package server

import (
	"bytes"
	"encoding/binary"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"substream/internal/stream"
)

func encodeBinary(items []uint64) []byte {
	buf := make([]byte, 8*len(items))
	for i, v := range items {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	return buf
}

func collectSink(dst *stream.Slice) func(stream.Slice) {
	return func(chunk stream.Slice) { *dst = append(*dst, chunk...) }
}

func TestDecodeBinaryStreamRoundTrip(t *testing.T) {
	// Spans several pooled chunks and ends on a non-chunk boundary, so
	// the carry-between-reads path runs.
	items := make([]uint64, 3*binaryChunkItems+1234)
	for i := range items {
		items[i] = uint64(i + 1)
	}
	var got stream.Slice
	n, err := decodeBinaryStream(bytes.NewReader(encodeBinary(items)), collectSink(&got))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(items) || len(got) != len(items) {
		t.Fatalf("decoded %d items (sink saw %d), want %d", n, len(got), len(items))
	}
	for i, v := range items {
		if got[i] != stream.Item(v) {
			t.Fatalf("item %d decoded as %d, want %d", i, got[i], v)
		}
	}
}

func TestDecodeBinaryStreamRejectsCorruption(t *testing.T) {
	t.Run("truncated", func(t *testing.T) {
		var got stream.Slice
		_, err := decodeBinaryStream(bytes.NewReader([]byte{1, 2, 3}), collectSink(&got))
		if err == nil || !strings.Contains(err.Error(), "truncated mid-item") {
			t.Fatalf("truncated body error = %v", err)
		}
		if len(got) != 0 {
			t.Fatalf("sink saw %d items from a truncated 3-byte body", len(got))
		}
	})
	t.Run("zero-item", func(t *testing.T) {
		var got stream.Slice
		body := encodeBinary([]uint64{5, 6, 0, 7})
		n, err := decodeBinaryStream(bytes.NewReader(body), collectSink(&got))
		if err == nil || !strings.Contains(err.Error(), "1-based universe") {
			t.Fatalf("zero-item error = %v", err)
		}
		// Items before the bad record in the same chunk are not handed
		// to the sink; the reported count matches what the sink saw.
		if n != len(got) {
			t.Fatalf("reported %d ingested items but sink saw %d", n, len(got))
		}
	})
	t.Run("zero-item-after-full-chunks", func(t *testing.T) {
		items := make([]uint64, binaryChunkItems+4)
		for i := range items {
			items[i] = uint64(i + 1)
		}
		items[len(items)-1] = 0
		var got stream.Slice
		n, err := decodeBinaryStream(bytes.NewReader(encodeBinary(items)), collectSink(&got))
		if err == nil {
			t.Fatal("zero item after full chunks accepted")
		}
		if n != binaryChunkItems || len(got) != binaryChunkItems {
			t.Fatalf("consumed-prefix count = %d (sink %d), want %d", n, len(got), binaryChunkItems)
		}
	})
}

func TestDecodeBinaryStreamEmptyBody(t *testing.T) {
	var got stream.Slice
	n, err := decodeBinaryStream(bytes.NewReader(nil), collectSink(&got))
	if err != nil || n != 0 || len(got) != 0 {
		t.Fatalf("empty body: n=%d err=%v sink=%d", n, err, len(got))
	}
}

// TestDecodeBinaryStreamAllocFree pins the tentpole's steady-state
// guarantee: after the pools warm up, decoding a request body allocates
// nothing — scratch and item buffers are recycled, not remade, per
// request.
func TestDecodeBinaryStreamAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race for the strict bound")
	}
	items := make([]uint64, 2*binaryChunkItems+100)
	for i := range items {
		items[i] = uint64(i + 1)
	}
	body := encodeBinary(items)
	rd := bytes.NewReader(body)
	sink := func(stream.Slice) {}
	// Warm the pools once outside the measured runs.
	if _, err := decodeBinaryStream(rd, sink); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(body)
		if _, err := decodeBinaryStream(rd, sink); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("decodeBinaryStream allocates %v objects per request in steady state, want 0", allocs)
	}
}

// TestIngestRejectsDeclaredOversizeAtomically pins the up-front length
// gate: a request whose Content-Length exceeds the ingest limit must be
// refused with 413 before ANY item reaches the estimators — the
// streaming decode path must not ingest a doomed request's prefix.
func TestIngestRejectsDeclaredOversizeAtomically(t *testing.T) {
	a := NewAgent(AgentConfig{ID: "oversize-test"})
	defer a.Close()
	if err := a.CreateStream("s", StreamConfig{Stat: "exactcounter", P: 1, Seed: 1, Presampled: true, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()
	// Declare an over-limit length; send only a small (valid) prefix so
	// a buggy streaming path would have something to ingest.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/streams/s/ingest",
		bytes.NewReader(encodeBinary([]uint64{1, 2, 3})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeBinary)
	req.ContentLength = maxIngestBytes + 1
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversize ingest returned %s, want 413", resp.Status)
		}
	}
	// Whether or not the client transport surfaced the early close as an
	// error, nothing may have been ingested.
	st, ok := a.lookup("s")
	if !ok {
		t.Fatal("stream vanished")
	}
	if fed, _ := st.run.counts(); fed != 0 {
		t.Fatalf("oversize request ingested %d items, want 0", fed)
	}
}

func TestParseIngestType(t *testing.T) {
	cases := []struct {
		ct      string
		format  ingestFormat
		wantErr bool
	}{
		{"", formatText, false},
		{ContentTypeText, formatText, false},
		{"text/plain; charset=utf-8", formatText, false},
		{ContentTypeBinary, formatBinary, false},
		{ContentTypeTextWeighted, formatTextWeighted, false},
		{ContentTypeTextWeighted + "; charset=utf-8", formatTextWeighted, false},
		{ContentTypeBinaryWeighted, formatBinaryWeighted, false},
		{"application/json", formatText, true},
	}
	for _, c := range cases {
		format, err := parseIngestType(c.ct)
		if (err != nil) != c.wantErr || format != c.format {
			t.Fatalf("parseIngestType(%q) = (%v, %v), want (%v, err=%v)", c.ct, format, err, c.format, c.wantErr)
		}
	}
}
