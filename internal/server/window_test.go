package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"substream/internal/estimator"
	"substream/internal/stream"
	"substream/internal/window"
	"substream/internal/workload"
)

// withManualEpochs reroutes every stream clock built during the test to
// one shared manual clock, so the test drives epoch boundaries instead
// of the wall.
func withManualEpochs(t *testing.T) *window.ManualClock {
	t.Helper()
	clock := window.NewManualClock()
	prev := newEpochClock
	newEpochClock = func(time.Duration) window.Clock { return clock }
	t.Cleanup(func() { newEpochClock = prev })
	return clock
}

// epochChunks deals a deterministic workload into [epoch][agent] chunks.
func epochChunks(epochs, agents, perChunk int) [][]stream.Slice {
	wl := workload.Zipf(epochs*agents*perChunk, 2048, 1.1, 77)
	s := stream.Collect(wl.Stream)
	out := make([][]stream.Slice, epochs)
	for e := range out {
		out[e] = make([]stream.Slice, agents)
		for a := range out[e] {
			lo := (e*agents + a) * perChunk
			out[e][a] = s[lo : lo+perChunk]
		}
	}
	return out
}

// TestWindowedFleetMatchesReplay is the distributed half of the
// window-vs-replay acceptance test: two agents on MISALIGNED flush
// schedules ship windowed summaries over HTTP, and the collector's
// last-W-epochs estimate must match a fresh (unwindowed) estimator fed
// only those epochs' items from both agents — for a sketch kind, a
// levelset kind, and a core kind.
func TestWindowedFleetMatchesReplay(t *testing.T) {
	const (
		epochs   = 5
		W        = 3
		perChunk = 2500
	)
	chunks := epochChunks(epochs, 2, perChunk)

	for _, stat := range []string{"kmv", "exactcounter", "f0"} {
		t.Run(stat, func(t *testing.T) {
			clock := withManualEpochs(t)

			collector := NewCollector(CollectorConfig{})
			cts := httptest.NewServer(collector.Handler())
			t.Cleanup(cts.Close)

			cfg := StreamConfig{
				Stat: stat, P: 0.5, Seed: 21, Shards: 2, Batch: 128,
				Presampled: true, Window: W, Epoch: Duration(time.Second),
			}
			cfgBody, _ := json.Marshal(cfg)
			var agents []string
			for i := 0; i < 2; i++ {
				agent := NewAgent(AgentConfig{ID: fmt.Sprintf("agent-%d", i), Upstream: cts.URL})
				ats := httptest.NewServer(agent.Handler())
				t.Cleanup(ats.Close)
				t.Cleanup(agent.Close)
				if resp := do(t, http.MethodPut, ats.URL+"/v1/streams/w", "application/json", cfgBody, nil); resp.StatusCode != http.StatusCreated {
					t.Fatalf("create stream: status %d", resp.StatusCode)
				}
				agents = append(agents, ats.URL)
			}

			flush := func(i int) {
				if resp := do(t, http.MethodPost, agents[i]+"/flush", "", nil, nil); resp.StatusCode != http.StatusOK {
					t.Fatalf("flush agent %d: status %d", i, resp.StatusCode)
				}
			}
			for e := 0; e < epochs; e++ {
				clock.Set(uint64(e))
				for i, url := range agents {
					if resp := do(t, http.MethodPost, url+"/v1/streams/w/ingest", ContentTypeBinary, binBody(chunks[e][i]), nil); resp.StatusCode != http.StatusOK {
						t.Fatalf("ingest agent %d: status %d", i, resp.StatusCode)
					}
				}
				// Quiesce both pipelines before the next epoch boundary:
				// the estimate path Syncs, pinning every fed batch to the
				// current epoch.
				for _, url := range agents {
					do(t, http.MethodGet, url+"/v1/streams/w/estimate", "", nil, nil)
				}
				// Misaligned schedules: agent 0 ships every epoch, agent 1
				// only mid-run and at the end.
				flush(0)
				if e == 1 || e == epochs-1 {
					flush(1)
				}
			}

			// Replay the last W epochs (both agents' chunks) into a fresh
			// unwindowed estimator, and everything into a cumulative one.
			spec := cfg.withDefaults().spec()
			replay, err := estimator.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			for e := epochs - W; e < epochs; e++ {
				for i := range agents {
					replay.UpdateBatch(chunks[e][i])
				}
			}
			cum, err := estimator.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < epochs; e++ {
				for i := range agents {
					cum.UpdateBatch(chunks[e][i])
				}
			}

			var got estimateResp
			do(t, http.MethodGet, cts.URL+"/v1/streams/w/estimate", "", nil, &got)
			if got.Agents != 2 {
				t.Fatalf("collector folded %d agents, want 2", got.Agents)
			}
			near := func(a, b float64) bool {
				return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
			}
			for name, want := range replay.Estimates() {
				if !near(got.Estimates.Values["window_"+name], want) {
					t.Errorf("global window_%s = %v, replay of last %d epochs = %v",
						name, got.Estimates.Values["window_"+name], W, want)
				}
			}
			for name, want := range cum.Estimates() {
				if !near(got.Estimates.Values[name], want) {
					t.Errorf("global cumulative %s = %v, sequential = %v",
						name, got.Estimates.Values[name], want)
				}
			}

			// Summary.Epoch is surfaced per agent in the list response.
			var list struct {
				Streams []struct {
					Detail []struct {
						Agent string `json:"agent"`
						Epoch uint64 `json:"epoch"`
					} `json:"agent_detail"`
				} `json:"streams"`
			}
			do(t, http.MethodGet, cts.URL+"/v1/streams", "", nil, &list)
			if len(list.Streams) != 1 || len(list.Streams[0].Detail) != 2 {
				t.Fatalf("list response: %+v", list)
			}
			for _, d := range list.Streams[0].Detail {
				if d.Epoch != epochs-1 {
					t.Errorf("agent %s shipped epoch %d, want %d", d.Agent, d.Epoch, epochs-1)
				}
			}
		})
	}
}

// TestWindowedLocalEstimates checks the agent's own estimate endpoint
// answers both scopes, and that the window forgets expired epochs while
// the cumulative scope keeps them.
func TestWindowedLocalEstimates(t *testing.T) {
	clock := withManualEpochs(t)
	agent := NewAgent(AgentConfig{ID: "solo"})
	defer agent.Close()
	ats := httptest.NewServer(agent.Handler())
	defer ats.Close()

	cfg, _ := json.Marshal(StreamConfig{
		Stat: "exactcounter", P: 0.5, Seed: 3, Presampled: true, Shards: 1,
		Window: 2, Epoch: Duration(time.Second),
	})
	do(t, http.MethodPut, ats.URL+"/v1/streams/w", "application/json", cfg, nil)

	do(t, http.MethodPost, ats.URL+"/v1/streams/w/ingest", ContentTypeText, []byte("1\n2\n3\n"), nil)
	var est estimateResp
	do(t, http.MethodGet, ats.URL+"/v1/streams/w/estimate", "", nil, &est)
	if est.Estimates.Values["f0"] != 3 || est.Estimates.Values["window_f0"] != 3 {
		t.Fatalf("epoch 0 estimates: %v", est.Estimates.Values)
	}

	clock.Set(3) // both window epochs expire
	do(t, http.MethodGet, ats.URL+"/v1/streams/w/estimate", "", nil, &est)
	if est.Estimates.Values["window_f0"] != 0 {
		t.Fatalf("window_f0 = %v after expiry, want 0", est.Estimates.Values["window_f0"])
	}
	if est.Estimates.Values["f0"] != 3 {
		t.Fatalf("cumulative f0 = %v after expiry, want 3", est.Estimates.Values["f0"])
	}
}

// TestWindowConfigValidationAndSharing pins the config rules: window
// bounds, epoch requirements, and Window/Epoch as shared fields.
func TestWindowConfigValidationAndSharing(t *testing.T) {
	base := StreamConfig{Stat: "f0", P: 0.5, Seed: 1, Presampled: true}
	cases := map[string]func(*StreamConfig){
		"negative window":    func(c *StreamConfig) { c.Window = -1 },
		"huge window":        func(c *StreamConfig) { c.Window = window.MaxWindow + 1 },
		"negative epoch":     func(c *StreamConfig) { c.Window = 2; c.Epoch = Duration(-time.Second) },
		"epoch sans window":  func(c *StreamConfig) { c.Epoch = Duration(time.Second) },
		"window tag as stat": func(c *StreamConfig) { c.Stat = "window" },
	}
	for name, mut := range cases {
		cfg := base
		mut(&cfg)
		if err := cfg.withDefaults().validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}

	// Defaulting: a window with no epoch gets the 1m default.
	cfg := base
	cfg.Window = 5
	cfg = cfg.withDefaults()
	if cfg.Epoch != Duration(time.Minute) {
		t.Fatalf("default epoch = %v, want 1m", cfg.Epoch)
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}

	// Window and Epoch are shared fields: disagreeing re-registration
	// conflicts exactly like a different seed.
	agent := NewAgent(AgentConfig{ID: "cfg"})
	defer agent.Close()
	if err := agent.CreateStream("s", cfg); err != nil {
		t.Fatal(err)
	}
	clash := cfg
	clash.Window = 6
	if err := agent.CreateStream("s", clash); err == nil {
		t.Fatal("conflicting window span accepted")
	}
	clash = cfg
	clash.Epoch = Duration(2 * time.Minute)
	if err := agent.CreateStream("s", clash); err == nil {
		t.Fatal("conflicting epoch length accepted")
	}
}

// TestDurationJSON pins the config type's two accepted input forms.
func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"90s"`), &d); err != nil || d != Duration(90*time.Second) {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1000000000`), &d); err != nil || d != Duration(time.Second) {
		t.Fatalf("integer form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"not a duration"`), &d); err == nil {
		t.Fatal("garbage duration accepted")
	}
	out, err := json.Marshal(Duration(time.Minute))
	if err != nil || string(out) != `"1m0s"` {
		t.Fatalf("marshal: %s %v", out, err)
	}
}
