package server

import (
	"fmt"
	"sync"

	"substream/internal/core"
	"substream/internal/pipeline"
	"substream/internal/rng"
	"substream/internal/stream"
)

// StreamConfig declares one named stream: which statistic to estimate,
// the sampling regime, and the pipeline shape. All agents feeding the
// same logical stream MUST share every estimator-affecting field (Stat,
// P, K, Epsilon, Alpha, Budget, Exact, Seed); Shards, Batch and
// SampleSeed are local to each process.
type StreamConfig struct {
	// Stat selects the estimator: f0 | fk | entropy | hh1 | hh2 | all.
	Stat string `json:"stat"`
	// P is the Bernoulli sampling probability of the original stream.
	P float64 `json:"p"`
	// K is the moment order for Stat "fk" (and "all"). Default 2.
	K int `json:"k,omitempty"`
	// Epsilon is the target relative error. Default 0.2.
	Epsilon float64 `json:"eps,omitempty"`
	// Alpha is the heaviness threshold for hh1/hh2/all. Default 0.05.
	Alpha float64 `json:"alpha,omitempty"`
	// Budget bounds the level-set collision counter for "fk". Default 4096.
	Budget int `json:"budget,omitempty"`
	// Exact selects the exact collision backend for "fk".
	Exact bool `json:"exact,omitempty"`
	// Seed constructs the estimator replicas. Identical Seed across
	// agents is what makes their summaries mergeable. Default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Shards is the pipeline worker count. Default GOMAXPROCS.
	Shards int `json:"shards,omitempty"`
	// Batch is the pipeline batch size. Default 1024.
	Batch int `json:"batch,omitempty"`
	// Presampled declares that ingested items are already the sampled
	// stream L; the agent feeds them straight to the estimators. When
	// false (the default) the agent Bernoulli-samples ingested items at
	// rate P, the sampled-NetFlow deployment.
	Presampled bool `json:"presampled,omitempty"`
	// SampleSeed seeds the in-agent sampling coins. Unlike Seed it
	// SHOULD differ across agents (each monitor flips its own coins);
	// 0 lets the agent pick one.
	SampleSeed uint64 `json:"sample_seed,omitempty"`
}

// withDefaults fills unset fields.
func (c StreamConfig) withDefaults() StreamConfig {
	if c.K == 0 {
		c.K = 2
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.2
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.Budget == 0 {
		c.Budget = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// validate rejects configurations the estimator constructors would panic
// on; HTTP input must never reach a panic.
func (c StreamConfig) validate() error {
	switch c.Stat {
	case "f0", "fk", "entropy", "hh1", "hh2", "all":
	default:
		return fmt.Errorf("unknown stat %q (want f0 | fk | entropy | hh1 | hh2 | all)", c.Stat)
	}
	if !(c.P > 0 && c.P <= 1) {
		return fmt.Errorf("p must be in (0, 1], got %v", c.P)
	}
	if c.K < 2 || c.K > 12 {
		return fmt.Errorf("k must be in [2, 12], got %d", c.K)
	}
	if !(c.Epsilon > 0 && c.Epsilon < 1) {
		return fmt.Errorf("eps must be in (0, 1), got %v", c.Epsilon)
	}
	if !(c.Alpha > 0 && c.Alpha < 1) {
		return fmt.Errorf("alpha must be in (0, 1), got %v", c.Alpha)
	}
	if c.Budget < 1 {
		return fmt.Errorf("budget must be >= 1, got %d", c.Budget)
	}
	if c.Shards < 0 || c.Batch < 0 {
		return fmt.Errorf("shards and batch must be >= 0")
	}
	return nil
}

// sharedEquals reports whether two configs agree on every field that
// must match across agents for their summaries to merge.
func (c StreamConfig) sharedEquals(o StreamConfig) bool {
	return c.Stat == o.Stat && c.P == o.P && c.K == o.K &&
		c.Epsilon == o.Epsilon && c.Alpha == o.Alpha &&
		c.Budget == o.Budget && c.Exact == o.Exact && c.Seed == o.Seed
}

// Estimates is the statistic report of one stream, local or global.
type Estimates struct {
	// Values holds scalar estimates keyed by statistic name.
	Values map[string]float64 `json:"values"`
	// F1Hitters and F2Hitters list detected heavy hitters (hh1/hh2/all).
	F1Hitters []core.ReportedHitter `json:"f1_hitters,omitempty"`
	F2Hitters []core.ReportedHitter `json:"f2_hitters,omitempty"`
}

// Summary is the envelope an agent ships upstream: the agent's full
// cumulative estimator state for one stream. Payload is the versioned
// binary form (see doc.go); JSON encodes it as base64. Boot identifies
// the agent process incarnation: a restarted agent starts over with a
// new Boot and Seq 1. Within one Boot the collector orders summaries by
// Seq; any Boot change is adopted as a new incarnation, so the fresh
// process's state replaces the dead one's instead of being mistaken for
// stale replays.
type Summary struct {
	Agent   string       `json:"agent"`
	Stream  string       `json:"stream"`
	Boot    uint64       `json:"boot,omitempty"`
	Seq     uint64       `json:"seq"`
	Config  StreamConfig `json:"config"`
	Fed     uint64       `json:"fed"`
	Kept    uint64       `json:"kept"`
	Payload []byte       `json:"payload"`
}

// binding ties a concrete estimator type to the five operations the
// daemon needs: construct, merge, serialize, deserialize, report.
type binding[E any] struct {
	fresh     func() E
	merge     func(dst, src E) error
	marshal   func(E) ([]byte, error)
	unmarshal func([]byte) (E, error)
	estimates func(E) Estimates
}

// streamRunner is one agent-side stream: a running pipeline plus the
// codec hooks the shipping path needs. Implementations are safe for
// concurrent use. snapshot returns the serialized cumulative state
// together with the fed/kept counts captured atomically with it, so a
// shipped Summary's totals always describe exactly its Payload.
type streamRunner interface {
	ingest(items stream.Slice)
	estimates() (Estimates, error)
	snapshot() (payload []byte, fed, kept uint64, err error)
	counts() (fed, kept uint64)
	close()
}

// folder is the collector-side half of a binding. Payloads decode once
// on arrival (decode); estimate queries fold the retained decoded states
// into a fresh accumulator (foldDecoded), never mutating them, so one
// decode serves every subsequent query.
type folder interface {
	decode(payload []byte) (any, error)
	foldDecoded(states []any) (Estimates, error)
}

// runner implements streamRunner for one estimator type. The mutex
// serializes the single-producer pipeline feed with the Sync-based
// snapshot path, and guards the closed flag so an ingest racing a
// DELETE (or shutdown) is dropped instead of panicking the pipeline.
type runner[E any] struct {
	b      binding[E]
	mu     sync.Mutex
	pl     *pipeline.Pipeline[E]
	closed bool
}

func newRunner[E any](cfg StreamConfig, b binding[E]) streamRunner {
	sampleP := cfg.P
	if cfg.Presampled {
		sampleP = 0
	}
	pl := pipeline.New(pipeline.Config{
		Shards:    cfg.Shards,
		BatchSize: cfg.Batch,
		SampleP:   sampleP,
		Seed:      cfg.SampleSeed,
	}, func(int) E { return b.fresh() })
	return &runner[E]{b: b, pl: pl}
}

func (r *runner[E]) ingest(items stream.Slice) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.pl.FeedSlice(items)
}

// merged quiesces the pipeline and folds every shard replica into a
// fresh accumulator, leaving the replicas untouched so ingestion can
// continue. Callers must hold r.mu.
func (r *runner[E]) merged() (E, error) {
	r.pl.Sync()
	acc := r.b.fresh()
	for _, rep := range r.pl.Replicas() {
		if err := r.b.merge(acc, rep); err != nil {
			return acc, err
		}
	}
	return acc, nil
}

func (r *runner[E]) estimates() (Estimates, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	acc, err := r.merged()
	if err != nil {
		return Estimates{}, err
	}
	return r.b.estimates(acc), nil
}

func (r *runner[E]) snapshot() ([]byte, uint64, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	acc, err := r.merged()
	if err != nil {
		return nil, 0, 0, err
	}
	payload, err := r.b.marshal(acc)
	if err != nil {
		return nil, 0, 0, err
	}
	return payload, r.pl.Fed(), r.pl.Kept(), nil
}

func (r *runner[E]) counts() (uint64, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pl.Fed(), r.pl.Kept()
}

func (r *runner[E]) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.pl.Close()
}

// folderImpl implements folder for one estimator type.
type folderImpl[E any] struct{ b binding[E] }

func (f folderImpl[E]) decode(payload []byte) (any, error) {
	return f.b.unmarshal(payload)
}

func (f folderImpl[E]) foldDecoded(states []any) (Estimates, error) {
	if len(states) == 0 {
		return Estimates{}, fmt.Errorf("no summaries to fold")
	}
	// Merge into a fresh accumulator: Merge mutates only its receiver,
	// so the retained per-agent states stay pristine across queries.
	acc := f.b.fresh()
	for _, s := range states {
		e, ok := s.(E)
		if !ok {
			return Estimates{}, fmt.Errorf("retained state is %T, want %T", s, acc)
		}
		if err := f.b.merge(acc, e); err != nil {
			return Estimates{}, err
		}
	}
	return f.b.estimates(acc), nil
}

// --- per-stat bindings ---

func f0Binding(cfg StreamConfig) binding[*core.F0Estimator] {
	return binding[*core.F0Estimator]{
		fresh: func() *core.F0Estimator {
			return core.NewF0Estimator(core.F0Config{P: cfg.P}, rng.New(cfg.Seed))
		},
		merge:     (*core.F0Estimator).Merge,
		marshal:   (*core.F0Estimator).MarshalBinary,
		unmarshal: core.UnmarshalF0Estimator,
		estimates: func(e *core.F0Estimator) Estimates {
			return Estimates{Values: map[string]float64{
				"f0":          e.Estimate(),
				"f0_sampled":  e.SampledEstimate(),
				"error_bound": e.ErrorBound(),
			}}
		},
	}
}

func fkBinding(cfg StreamConfig) binding[*core.FkEstimator] {
	return binding[*core.FkEstimator]{
		fresh: func() *core.FkEstimator {
			return core.NewFkEstimator(core.FkConfig{
				K: cfg.K, P: cfg.P, Epsilon: cfg.Epsilon,
				Budget: cfg.Budget, Exact: cfg.Exact,
			}, rng.New(cfg.Seed))
		},
		merge:     (*core.FkEstimator).Merge,
		marshal:   (*core.FkEstimator).MarshalBinary,
		unmarshal: core.UnmarshalFkEstimator,
		estimates: func(e *core.FkEstimator) Estimates {
			vals := map[string]float64{
				"sampled_length": float64(e.SampledLength()),
			}
			for l, phi := range e.Moments() {
				if l >= 1 {
					vals[fmt.Sprintf("f%d", l)] = phi
				}
			}
			vals["fk"] = e.Estimate()
			return Estimates{Values: vals}
		},
	}
}

func entropyBinding(cfg StreamConfig) binding[*core.EntropyEstimator] {
	return binding[*core.EntropyEstimator]{
		fresh: func() *core.EntropyEstimator {
			// Plugin backend: the only entropy backend with a sound merge
			// and therefore a wire form (see internal/core/marshal.go).
			return core.NewEntropyEstimator(core.EntropyConfig{P: cfg.P}, rng.New(cfg.Seed))
		},
		merge:     (*core.EntropyEstimator).Merge,
		marshal:   (*core.EntropyEstimator).MarshalBinary,
		unmarshal: core.UnmarshalEntropyEstimator,
		estimates: func(e *core.EntropyEstimator) Estimates {
			return Estimates{Values: map[string]float64{
				"entropy":        e.Estimate(),
				"sampled_length": float64(e.SampledLength()),
			}}
		},
	}
}

func hh1Binding(cfg StreamConfig) binding[*core.F1HeavyHitters] {
	return binding[*core.F1HeavyHitters]{
		fresh: func() *core.F1HeavyHitters {
			return core.NewF1HeavyHitters(core.F1HHConfig{
				P: cfg.P, Alpha: cfg.Alpha, Epsilon: cfg.Epsilon,
			}, rng.New(cfg.Seed))
		},
		merge:     (*core.F1HeavyHitters).Merge,
		marshal:   (*core.F1HeavyHitters).MarshalBinary,
		unmarshal: core.UnmarshalF1HeavyHitters,
		estimates: func(e *core.F1HeavyHitters) Estimates {
			hitters := e.Report()
			return Estimates{
				Values:    map[string]float64{"hitters": float64(len(hitters))},
				F1Hitters: hitters,
			}
		},
	}
}

func hh2Binding(cfg StreamConfig) binding[*core.F2HeavyHitters] {
	return binding[*core.F2HeavyHitters]{
		fresh: func() *core.F2HeavyHitters {
			return core.NewF2HeavyHitters(core.F2HHConfig{
				P: cfg.P, Alpha: cfg.Alpha, Epsilon: cfg.Epsilon,
			}, rng.New(cfg.Seed))
		},
		merge:     (*core.F2HeavyHitters).Merge,
		marshal:   (*core.F2HeavyHitters).MarshalBinary,
		unmarshal: core.UnmarshalF2HeavyHitters,
		estimates: func(e *core.F2HeavyHitters) Estimates {
			hitters := e.Report()
			return Estimates{
				Values:    map[string]float64{"hitters": float64(len(hitters))},
				F2Hitters: hitters,
			}
		},
	}
}

func monitorBinding(cfg StreamConfig) binding[*core.Monitor] {
	return binding[*core.Monitor]{
		fresh: func() *core.Monitor {
			return core.NewMonitor(core.MonitorConfig{
				P: cfg.P, K: cfg.K, Epsilon: cfg.Epsilon, HHAlpha: cfg.Alpha,
			}, rng.New(cfg.Seed))
		},
		merge:     (*core.Monitor).Merge,
		marshal:   (*core.Monitor).MarshalBinary,
		unmarshal: core.UnmarshalMonitor,
		estimates: func(m *core.Monitor) Estimates {
			rep := m.Report()
			return Estimates{
				Values: map[string]float64{
					"n":       rep.EstimatedLength,
					"fk":      rep.Fk,
					"f0":      rep.F0,
					"entropy": rep.Entropy,
				},
				F1Hitters: rep.F1HeavyHitters,
				F2Hitters: rep.F2HeavyHitters,
			}
		},
	}
}

// buildRunner constructs the agent-side stream for a validated config.
func buildRunner(cfg StreamConfig) (streamRunner, error) {
	switch cfg.Stat {
	case "f0":
		return newRunner(cfg, f0Binding(cfg)), nil
	case "fk":
		return newRunner(cfg, fkBinding(cfg)), nil
	case "entropy":
		return newRunner(cfg, entropyBinding(cfg)), nil
	case "hh1":
		return newRunner(cfg, hh1Binding(cfg)), nil
	case "hh2":
		return newRunner(cfg, hh2Binding(cfg)), nil
	case "all":
		return newRunner(cfg, monitorBinding(cfg)), nil
	default:
		return nil, fmt.Errorf("unknown stat %q", cfg.Stat)
	}
}

// buildFolder constructs the collector-side fold for a validated config.
func buildFolder(cfg StreamConfig) (folder, error) {
	switch cfg.Stat {
	case "f0":
		return folderImpl[*core.F0Estimator]{b: f0Binding(cfg)}, nil
	case "fk":
		return folderImpl[*core.FkEstimator]{b: fkBinding(cfg)}, nil
	case "entropy":
		return folderImpl[*core.EntropyEstimator]{b: entropyBinding(cfg)}, nil
	case "hh1":
		return folderImpl[*core.F1HeavyHitters]{b: hh1Binding(cfg)}, nil
	case "hh2":
		return folderImpl[*core.F2HeavyHitters]{b: hh2Binding(cfg)}, nil
	case "all":
		return folderImpl[*core.Monitor]{b: monitorBinding(cfg)}, nil
	default:
		return nil, fmt.Errorf("unknown stat %q", cfg.Stat)
	}
}
