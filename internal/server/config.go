package server

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"substream/internal/estimator"
	"substream/internal/pipeline"
	"substream/internal/stream"
	"substream/internal/window"
)

// Duration is a time.Duration that JSON-encodes as a human-readable
// string ("90s", "5m") and accepts either a string or integer
// nanoseconds on input — the friendly form for -streams files.
type Duration time.Duration

// String renders the duration in time.Duration's notation.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON encodes the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "90s"-style strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// StreamConfig declares one named stream: which statistic to estimate,
// the sampling regime, and the pipeline shape. All agents feeding the
// same logical stream MUST share every estimator-affecting field (Stat,
// P, K, Epsilon, Alpha, Budget, Exact, Seed); Shards, Batch and
// SampleSeed are local to each process.
type StreamConfig struct {
	// Stat selects the estimator kind: any name registered with the
	// internal/estimator registry (substreamd -list-estimators).
	Stat string `json:"stat"`
	// P is the Bernoulli sampling probability of the original stream.
	P float64 `json:"p"`
	// K is the moment order for Stat "fk" (and "all"). Default 2.
	K int `json:"k,omitempty"`
	// Epsilon is the target relative error. Default 0.2.
	Epsilon float64 `json:"eps,omitempty"`
	// Alpha is the heaviness threshold for hh1/hh2/all. Default 0.05.
	Alpha float64 `json:"alpha,omitempty"`
	// Budget bounds counter-based summaries (level-set collision counter
	// for "fk", top-k trackers). Default 4096.
	Budget int `json:"budget,omitempty"`
	// Exact selects the exact collision backend for "fk".
	Exact bool `json:"exact,omitempty"`
	// Seed constructs the estimator replicas. Identical Seed across
	// agents is what makes their summaries mergeable. Default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Shards is the pipeline worker count. Default GOMAXPROCS.
	Shards int `json:"shards,omitempty"`
	// Batch is the pipeline batch size. Default 1024.
	Batch int `json:"batch,omitempty"`
	// Presampled declares that ingested items are already the sampled
	// stream L; the agent feeds them straight to the estimators. When
	// false (the default) the agent Bernoulli-samples ingested items at
	// rate P, the sampled-NetFlow deployment.
	Presampled bool `json:"presampled,omitempty"`
	// SampleSeed seeds the in-agent sampling coins. Unlike Seed it
	// SHOULD differ across agents (each monitor flips its own coins);
	// 0 lets the agent pick one.
	SampleSeed uint64 `json:"sample_seed,omitempty"`
	// Window, when > 0, wraps every replica in an epoch ring of Window
	// generations (internal/window): estimates then carry both the
	// cumulative values and "window_"-prefixed values covering the last
	// Window epochs. Like the estimator fields, it must match across
	// agents of one logical stream.
	Window int `json:"window,omitempty"`
	// Epoch is the epoch duration of windowed streams. Epoch boundaries
	// derive from Unix time, so agents with synchronized clocks and an
	// identical Epoch agree on them without coordination. Default 1m
	// when Window > 0.
	Epoch Duration `json:"epoch,omitempty"`
}

// withDefaults fills unset fields.
func (c StreamConfig) withDefaults() StreamConfig {
	if c.K == 0 {
		c.K = 2
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.2
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.Budget == 0 {
		c.Budget = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Window > 0 && c.Epoch == 0 {
		c.Epoch = Duration(time.Minute)
	}
	return c
}

// validate rejects configurations the estimator constructors would panic
// on; HTTP input must never reach a panic. Stat membership comes from the
// estimator registry, so a newly registered kind is accepted here with no
// server change.
func (c StreamConfig) validate() error {
	if k, ok := estimator.Lookup(c.Stat); !ok || k.New == nil {
		return fmt.Errorf("unknown stat %q (want one of %s)",
			c.Stat, strings.Join(estimator.Stats(), " | "))
	}
	if !(c.P > 0 && c.P <= 1) {
		return fmt.Errorf("p must be in (0, 1], got %v", c.P)
	}
	if c.K < 2 || c.K > 12 {
		return fmt.Errorf("k must be in [2, 12], got %d", c.K)
	}
	if !(c.Epsilon > 0 && c.Epsilon < 1) {
		return fmt.Errorf("eps must be in (0, 1), got %v", c.Epsilon)
	}
	if !(c.Alpha > 0 && c.Alpha < 1) {
		return fmt.Errorf("alpha must be in (0, 1), got %v", c.Alpha)
	}
	if c.Budget < 1 {
		return fmt.Errorf("budget must be >= 1, got %d", c.Budget)
	}
	if c.Shards < 0 || c.Batch < 0 {
		return fmt.Errorf("shards and batch must be >= 0")
	}
	if c.Window < 0 || c.Window > window.MaxWindow {
		return fmt.Errorf("window must be in [0, %d], got %d", window.MaxWindow, c.Window)
	}
	if c.Window > 0 && c.Epoch <= 0 {
		return fmt.Errorf("windowed streams need a positive epoch, got %v", c.Epoch)
	}
	if c.Window == 0 && c.Epoch != 0 {
		return fmt.Errorf("epoch %v set without a window", c.Epoch)
	}
	return nil
}

// spec projects the estimator-affecting fields into the registry's
// construction input.
func (c StreamConfig) spec() estimator.Spec {
	return estimator.Spec{
		Stat: c.Stat, P: c.P, K: c.K, Epsilon: c.Epsilon,
		Alpha: c.Alpha, Budget: c.Budget, Exact: c.Exact, Seed: c.Seed,
	}
}

// sharedEquals reports whether two configs agree on every field that
// must match across agents for their summaries to merge. Window and
// Epoch are shared fields: rings of different spans or epoch lengths
// refuse to merge, exactly like estimators from different seeds.
func (c StreamConfig) sharedEquals(o StreamConfig) bool {
	return c.spec() == o.spec() && c.Window == o.Window && c.Epoch == o.Epoch
}

// newEpochClock builds the epoch clock of one windowed stream. A
// package-level hook so server tests can substitute a manual clock and
// drive epoch boundaries deterministically.
var newEpochClock = func(epochLen time.Duration) window.Clock {
	return window.NewWallClock(epochLen)
}

// newEstimator returns the constructor every replica of this stream is
// built from: the registered kind, wrapped in an epoch ring sharing
// clock when Window > 0. All replicas of one stream must be built from
// ONE returned constructor, so they share the clock and rotate in
// lockstep.
func (c StreamConfig) newEstimator() func() (estimator.Estimator, error) {
	spec := c.spec()
	inner := func() (estimator.Estimator, error) { return estimator.New(spec) }
	if c.Window <= 0 {
		return inner
	}
	clock := newEpochClock(time.Duration(c.Epoch))
	return func() (estimator.Estimator, error) {
		return window.Wrap(window.Config{
			Window:   c.Window,
			EpochLen: time.Duration(c.Epoch),
			Clock:    clock,
			New:      inner,
		})
	}
}

// Estimates is the statistic report of one stream, local or global: the
// estimator layer's named-value report, served as JSON.
type Estimates = estimator.Report

// Summary is the envelope an agent ships upstream: the agent's full
// cumulative estimator state for one stream. Payload is the versioned
// binary form (see doc.go); JSON encodes it as base64. Boot identifies
// the agent process incarnation: a restarted agent starts over with a
// new Boot and Seq 1. Within one Boot the collector orders summaries by
// Seq; any Boot change is adopted as a new incarnation, so the fresh
// process's state replaces the dead one's instead of being mistaken for
// stale replays.
type Summary struct {
	Agent  string       `json:"agent"`
	Stream string       `json:"stream"`
	Boot   uint64       `json:"boot,omitempty"`
	Seq    uint64       `json:"seq"`
	Config StreamConfig `json:"config"`
	Fed    uint64       `json:"fed"`
	Kept   uint64       `json:"kept"`
	// Epoch is the epoch index the stream's ring was serialized at (0
	// for unwindowed streams) — the operator's handle for telling how
	// far behind an agent's window is without decoding the payload.
	Epoch uint64 `json:"epoch,omitempty"`
	// TraceID correlates this shipment's "ship" span (agent tracez ring)
	// with its "fold" span (collector tracez ring); FlushedAt is the
	// agent's flush wall time, from which the collector derives the
	// end-to-end flush→fold latency. Both are observability metadata:
	// acceptance and ordering never depend on them.
	TraceID   uint64    `json:"trace_id,omitempty"`
	FlushedAt time.Time `json:"flushed_at,omitzero"`
	Payload   []byte    `json:"payload"`
}

// streamRunner is one agent-side stream: a running pipeline plus the
// codec hooks the shipping path needs. Implementations are safe for
// concurrent use. snapshot returns the serialized cumulative state
// together with the epoch index (0 for unwindowed streams) and the
// fed/kept counts captured atomically with it, so a shipped Summary's
// totals always describe exactly its Payload.
type streamRunner interface {
	// ingest hands ownership of items to the runner (zero-copy dispatch;
	// the caller must not reuse the slice).
	ingest(items stream.Slice)
	// ingestCopy copies items into the runner's own batch buffers; the
	// caller keeps ownership and may reuse the slice immediately — the
	// pooled streaming-decode path depends on this.
	ingestCopy(items stream.Slice)
	// ingestOwned transfers ownership of items into the pipeline
	// zero-copy; release is invoked exactly once when the items have
	// been applied (immediately, if the runner is already closed) — the
	// ownership-transfer decode path depends on this.
	ingestOwned(items stream.Slice, release func())
	// ingestWeightedCopy and ingestWeightedOwned are the weighted-lane
	// mirrors of ingestCopy and ingestOwned, with identical ownership
	// contracts.
	ingestWeightedCopy(items stream.WSlice)
	ingestWeightedOwned(items stream.WSlice, release func())
	// subsetSum folds the shard replicas and answers the weighted
	// subset-sum query, window-scoped when windowScope is set. ok is
	// false when the stream's stat (or the requested scope) has no
	// subset-sum capability — a configuration error, not a zero.
	subsetSum(pred func(stream.Item) bool, windowScope bool) (v float64, ok bool, err error)
	estimates() (Estimates, error)
	snapshot() (payload []byte, epoch uint64, fed, kept uint64, err error)
	counts() (fed, kept uint64)
	// stats returns the pipeline's instrumentation snapshot (queue
	// occupancy, batch/sync counts) for the metrics layer.
	stats() pipeline.Stats
	close()
}

// runner implements streamRunner over the estimator registry: every
// shard replica is an estimator.Estimator built from the stream's
// constructor (the registered kind, epoch-ring-wrapped for windowed
// streams — all replicas share one epoch clock). The mutex serializes
// the single-producer pipeline feed with the Sync-based snapshot path,
// and guards the closed flag so an ingest racing a DELETE (or shutdown)
// is dropped instead of panicking the pipeline.
type runner struct {
	newEst func() (estimator.Estimator, error)
	mu     sync.Mutex
	pl     *pipeline.Pipeline[estimator.Estimator]
	closed bool
}

// buildRunner constructs the agent-side stream for a validated config.
func buildRunner(cfg StreamConfig) (streamRunner, error) {
	newEst := cfg.newEstimator()
	// Probe-construct once so a bad spec surfaces as an error here, not
	// a panic inside a pipeline worker.
	if _, err := newEst(); err != nil {
		return nil, err
	}
	sampleP := cfg.P
	if cfg.Presampled {
		sampleP = 0
	}
	r := &runner{newEst: newEst}
	r.pl = pipeline.New(pipeline.Config{
		Shards:    cfg.Shards,
		BatchSize: cfg.Batch,
		SampleP:   sampleP,
		Seed:      cfg.SampleSeed,
	}, func(int) estimator.Estimator {
		e, err := newEst()
		if err != nil {
			panic(err) // unreachable: the probe construction above succeeded
		}
		return e
	})
	return r, nil
}

func (r *runner) ingest(items stream.Slice) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.pl.FeedSlice(items)
}

func (r *runner) ingestCopy(items stream.Slice) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.pl.FeedCopy(items)
}

func (r *runner) ingestOwned(items stream.Slice, release func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		// The items are dropped, but the buffer must still flow back to
		// its owner or the decode pool leaks a chunk per racing request.
		if release != nil {
			release()
		}
		return
	}
	r.pl.FeedOwned(items, release)
}

func (r *runner) ingestWeightedCopy(items stream.WSlice) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.pl.FeedWeightedCopy(items)
}

func (r *runner) ingestWeightedOwned(items stream.WSlice, release func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		if release != nil {
			release()
		}
		return
	}
	r.pl.FeedWeightedOwned(items, release)
}

func (r *runner) subsetSum(pred func(stream.Item) bool, windowScope bool) (float64, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	acc, err := r.merged()
	if err != nil {
		return 0, false, err
	}
	return subsetSumOf(acc, pred, windowScope)
}

// subsetSumOf answers a subset-sum query against one folded estimator.
// Windowed streams need the special case: *window.Estimator deliberately
// does NOT satisfy estimator.Summer (its scoped answers carry an ok
// bool), so the wrapper is unwrapped and asked in the requested scope.
func subsetSumOf(acc estimator.Estimator, pred func(stream.Item) bool, windowScope bool) (float64, bool, error) {
	if we, ok := estimator.Unwrap(acc).(*window.Estimator); ok {
		if windowScope {
			v, ok := we.WindowSubsetSum(pred)
			return v, ok, nil
		}
		v, ok := we.SubsetSum(pred)
		return v, ok, nil
	}
	if windowScope {
		// A window-scoped query needs a windowed stream; the cumulative
		// answer would silently widen the asked-for scope.
		return 0, false, nil
	}
	s, ok := estimator.SummerOf(acc)
	if !ok {
		return 0, false, nil
	}
	return s.SubsetSum(pred), true, nil
}

// merged quiesces the pipeline and folds every shard replica into a
// fresh accumulator, leaving the replicas untouched so ingestion can
// continue. Callers must hold r.mu.
func (r *runner) merged() (estimator.Estimator, error) {
	r.pl.Sync()
	acc, err := r.newEst()
	if err != nil {
		return nil, err
	}
	for _, rep := range r.pl.Replicas() {
		if err := acc.Merge(rep); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func (r *runner) estimates() (Estimates, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	acc, err := r.merged()
	if err != nil {
		return Estimates{}, err
	}
	return estimator.ReportOf(acc), nil
}

func (r *runner) snapshot() ([]byte, uint64, uint64, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	acc, err := r.merged()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	payload, err := acc.MarshalBinary()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	// For windowed streams the summary advertises the epoch its ring was
	// serialized at; the collector surfaces it per agent.
	epoch, _ := window.EpochOf(acc)
	return payload, epoch, r.pl.Fed(), r.pl.Kept(), nil
}

func (r *runner) counts() (uint64, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pl.Fed(), r.pl.Kept()
}

func (r *runner) stats() pipeline.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pl.Stats()
}

func (r *runner) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.pl.Close()
}

// folder is the collector-side half of a stream: payloads decode once on
// arrival through the registry's Decode entry point, and estimate
// queries fold the retained decoded states into a fresh accumulator
// built from the stream's constructor — never mutating them, so one
// decode serves every subsequent query. For windowed streams the fresh
// accumulator sits at the wall clock's CURRENT epoch, so merging the
// retained per-agent rings aligns them to now: generations that have
// since expired drop out of the global window estimate even though the
// agents shipped them while still fresh.
type folder struct {
	newAcc func() (estimator.Estimator, error)
}

// buildFolder constructs the collector-side fold for a validated config.
// Unlike buildRunner it needs no probe construction: folding builds its
// accumulator lazily per query, and foldDecoded surfaces a bad spec as
// an error, so Accept never pays a throwaway estimator per summary.
func buildFolder(cfg StreamConfig) folder {
	return folder{newAcc: cfg.newEstimator()}
}

// foldStates merges the retained states into a fresh accumulator:
// Merge mutates only its receiver, so the per-agent states stay
// pristine across queries. A payload whose kind disagrees with the
// declared stat fails the type check inside Merge.
func (f folder) foldStates(states []estimator.Estimator) (estimator.Estimator, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("no summaries to fold")
	}
	acc, err := f.newAcc()
	if err != nil {
		return nil, err
	}
	for _, s := range states {
		if err := acc.Merge(s); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func (f folder) foldDecoded(states []estimator.Estimator) (Estimates, error) {
	acc, err := f.foldStates(states)
	if err != nil {
		return Estimates{}, err
	}
	return estimator.ReportOf(acc), nil
}
