package server

import (
	"fmt"
	"strings"
	"sync"

	"substream/internal/estimator"
	"substream/internal/pipeline"
	"substream/internal/stream"
)

// StreamConfig declares one named stream: which statistic to estimate,
// the sampling regime, and the pipeline shape. All agents feeding the
// same logical stream MUST share every estimator-affecting field (Stat,
// P, K, Epsilon, Alpha, Budget, Exact, Seed); Shards, Batch and
// SampleSeed are local to each process.
type StreamConfig struct {
	// Stat selects the estimator kind: any name registered with the
	// internal/estimator registry (substreamd -list-estimators).
	Stat string `json:"stat"`
	// P is the Bernoulli sampling probability of the original stream.
	P float64 `json:"p"`
	// K is the moment order for Stat "fk" (and "all"). Default 2.
	K int `json:"k,omitempty"`
	// Epsilon is the target relative error. Default 0.2.
	Epsilon float64 `json:"eps,omitempty"`
	// Alpha is the heaviness threshold for hh1/hh2/all. Default 0.05.
	Alpha float64 `json:"alpha,omitempty"`
	// Budget bounds counter-based summaries (level-set collision counter
	// for "fk", top-k trackers). Default 4096.
	Budget int `json:"budget,omitempty"`
	// Exact selects the exact collision backend for "fk".
	Exact bool `json:"exact,omitempty"`
	// Seed constructs the estimator replicas. Identical Seed across
	// agents is what makes their summaries mergeable. Default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Shards is the pipeline worker count. Default GOMAXPROCS.
	Shards int `json:"shards,omitempty"`
	// Batch is the pipeline batch size. Default 1024.
	Batch int `json:"batch,omitempty"`
	// Presampled declares that ingested items are already the sampled
	// stream L; the agent feeds them straight to the estimators. When
	// false (the default) the agent Bernoulli-samples ingested items at
	// rate P, the sampled-NetFlow deployment.
	Presampled bool `json:"presampled,omitempty"`
	// SampleSeed seeds the in-agent sampling coins. Unlike Seed it
	// SHOULD differ across agents (each monitor flips its own coins);
	// 0 lets the agent pick one.
	SampleSeed uint64 `json:"sample_seed,omitempty"`
}

// withDefaults fills unset fields.
func (c StreamConfig) withDefaults() StreamConfig {
	if c.K == 0 {
		c.K = 2
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.2
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.Budget == 0 {
		c.Budget = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// validate rejects configurations the estimator constructors would panic
// on; HTTP input must never reach a panic. Stat membership comes from the
// estimator registry, so a newly registered kind is accepted here with no
// server change.
func (c StreamConfig) validate() error {
	if k, ok := estimator.Lookup(c.Stat); !ok || k.New == nil {
		return fmt.Errorf("unknown stat %q (want one of %s)",
			c.Stat, strings.Join(estimator.Stats(), " | "))
	}
	if !(c.P > 0 && c.P <= 1) {
		return fmt.Errorf("p must be in (0, 1], got %v", c.P)
	}
	if c.K < 2 || c.K > 12 {
		return fmt.Errorf("k must be in [2, 12], got %d", c.K)
	}
	if !(c.Epsilon > 0 && c.Epsilon < 1) {
		return fmt.Errorf("eps must be in (0, 1), got %v", c.Epsilon)
	}
	if !(c.Alpha > 0 && c.Alpha < 1) {
		return fmt.Errorf("alpha must be in (0, 1), got %v", c.Alpha)
	}
	if c.Budget < 1 {
		return fmt.Errorf("budget must be >= 1, got %d", c.Budget)
	}
	if c.Shards < 0 || c.Batch < 0 {
		return fmt.Errorf("shards and batch must be >= 0")
	}
	return nil
}

// spec projects the estimator-affecting fields into the registry's
// construction input.
func (c StreamConfig) spec() estimator.Spec {
	return estimator.Spec{
		Stat: c.Stat, P: c.P, K: c.K, Epsilon: c.Epsilon,
		Alpha: c.Alpha, Budget: c.Budget, Exact: c.Exact, Seed: c.Seed,
	}
}

// sharedEquals reports whether two configs agree on every field that
// must match across agents for their summaries to merge.
func (c StreamConfig) sharedEquals(o StreamConfig) bool {
	return c.spec() == o.spec()
}

// Estimates is the statistic report of one stream, local or global: the
// estimator layer's named-value report, served as JSON.
type Estimates = estimator.Report

// Summary is the envelope an agent ships upstream: the agent's full
// cumulative estimator state for one stream. Payload is the versioned
// binary form (see doc.go); JSON encodes it as base64. Boot identifies
// the agent process incarnation: a restarted agent starts over with a
// new Boot and Seq 1. Within one Boot the collector orders summaries by
// Seq; any Boot change is adopted as a new incarnation, so the fresh
// process's state replaces the dead one's instead of being mistaken for
// stale replays.
type Summary struct {
	Agent   string       `json:"agent"`
	Stream  string       `json:"stream"`
	Boot    uint64       `json:"boot,omitempty"`
	Seq     uint64       `json:"seq"`
	Config  StreamConfig `json:"config"`
	Fed     uint64       `json:"fed"`
	Kept    uint64       `json:"kept"`
	Payload []byte       `json:"payload"`
}

// streamRunner is one agent-side stream: a running pipeline plus the
// codec hooks the shipping path needs. Implementations are safe for
// concurrent use. snapshot returns the serialized cumulative state
// together with the fed/kept counts captured atomically with it, so a
// shipped Summary's totals always describe exactly its Payload.
type streamRunner interface {
	ingest(items stream.Slice)
	estimates() (Estimates, error)
	snapshot() (payload []byte, fed, kept uint64, err error)
	counts() (fed, kept uint64)
	close()
}

// runner implements streamRunner over the estimator registry: every
// shard replica is an estimator.Estimator built from the stream's spec.
// The mutex serializes the single-producer pipeline feed with the
// Sync-based snapshot path, and guards the closed flag so an ingest
// racing a DELETE (or shutdown) is dropped instead of panicking the
// pipeline.
type runner struct {
	spec   estimator.Spec
	mu     sync.Mutex
	pl     *pipeline.Pipeline[estimator.Estimator]
	closed bool
}

// buildRunner constructs the agent-side stream for a validated config.
func buildRunner(cfg StreamConfig) (streamRunner, error) {
	spec := cfg.spec()
	// Probe-construct once so a bad spec surfaces as an error here, not
	// a panic inside a pipeline worker.
	if _, err := estimator.New(spec); err != nil {
		return nil, err
	}
	sampleP := cfg.P
	if cfg.Presampled {
		sampleP = 0
	}
	r := &runner{spec: spec}
	r.pl = pipeline.New(pipeline.Config{
		Shards:    cfg.Shards,
		BatchSize: cfg.Batch,
		SampleP:   sampleP,
		Seed:      cfg.SampleSeed,
	}, func(int) estimator.Estimator {
		e, err := estimator.New(spec)
		if err != nil {
			panic(err) // unreachable: the probe construction above succeeded
		}
		return e
	})
	return r, nil
}

func (r *runner) ingest(items stream.Slice) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.pl.FeedSlice(items)
}

// merged quiesces the pipeline and folds every shard replica into a
// fresh accumulator, leaving the replicas untouched so ingestion can
// continue. Callers must hold r.mu.
func (r *runner) merged() (estimator.Estimator, error) {
	r.pl.Sync()
	acc, err := estimator.New(r.spec)
	if err != nil {
		return nil, err
	}
	for _, rep := range r.pl.Replicas() {
		if err := acc.Merge(rep); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func (r *runner) estimates() (Estimates, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	acc, err := r.merged()
	if err != nil {
		return Estimates{}, err
	}
	return estimator.ReportOf(acc), nil
}

func (r *runner) snapshot() ([]byte, uint64, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	acc, err := r.merged()
	if err != nil {
		return nil, 0, 0, err
	}
	payload, err := acc.MarshalBinary()
	if err != nil {
		return nil, 0, 0, err
	}
	return payload, r.pl.Fed(), r.pl.Kept(), nil
}

func (r *runner) counts() (uint64, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pl.Fed(), r.pl.Kept()
}

func (r *runner) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.pl.Close()
}

// folder is the collector-side half of a stream: payloads decode once on
// arrival through the registry's Decode entry point, and estimate
// queries fold the retained decoded states into a fresh accumulator
// built from the stream's spec — never mutating them, so one decode
// serves every subsequent query.
type folder struct {
	spec estimator.Spec
}

// buildFolder constructs the collector-side fold for a validated config.
// Unlike buildRunner it needs no probe construction: folding builds its
// accumulator lazily per query, and foldDecoded surfaces a bad spec as
// an error, so Accept never pays a throwaway estimator per summary.
func buildFolder(cfg StreamConfig) folder {
	return folder{spec: cfg.spec()}
}

func (f folder) foldDecoded(states []estimator.Estimator) (Estimates, error) {
	if len(states) == 0 {
		return Estimates{}, fmt.Errorf("no summaries to fold")
	}
	// Merge into a fresh accumulator: Merge mutates only its receiver,
	// so the retained per-agent states stay pristine across queries. A
	// payload whose kind disagrees with the declared stat fails the
	// type check inside Merge.
	acc, err := estimator.New(f.spec)
	if err != nil {
		return Estimates{}, err
	}
	for _, s := range states {
		if err := acc.Merge(s); err != nil {
			return Estimates{}, err
		}
	}
	return estimator.ReportOf(acc), nil
}
