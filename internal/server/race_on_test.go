//go:build race

package server

// raceEnabled reports whether the race detector is active; its
// instrumentation adds bookkeeping allocations that would fail the
// strict zero-alloc assertions.
const raceEnabled = true
