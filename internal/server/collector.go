package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"substream/internal/estimator"
	"substream/internal/obs"
)

// CollectorConfig configures a collector daemon.
type CollectorConfig struct {
	// MaxSummaryAge excludes agents whose newest accepted summary is
	// older than this from Estimate: an agent that shipped once and died
	// stops haunting the global estimate once its state expires, and the
	// response reports how many were skipped. 0 retains every agent
	// forever (the pre-staleness behavior).
	MaxSummaryAge time.Duration
	// Now is the staleness time source. Nil means time.Now; tests
	// substitute a fake to drive expiry deterministically.
	Now func() time.Time
	// SnapshotDir, when non-empty, enables durability checkpoints: the
	// retained summary table is atomically written to
	// SnapshotDir/collector.snap by Run every SnapshotInterval (and once
	// on shutdown), and NewCollector restores from it on startup. A
	// corrupt or unreadable snapshot is abandoned whole — the collector
	// starts empty and warns, and the agents' cumulative reships rebuild
	// the lost state within a flush interval.
	SnapshotDir string
	// SnapshotInterval is the checkpoint period. 0 means 30s.
	SnapshotInterval time.Duration
	// Logger receives structured operational logs (rejected summaries at
	// Warn, per-request lines at Debug). Nil discards them.
	Logger *slog.Logger
}

// Collector is the monitoring daemon's aggregation role: it retains the
// latest shipped summary per (stream, agent) and folds them on demand
// into the global estimate — the central site of the paper's
// sampled-NetFlow scenario.
type Collector struct {
	cfg     CollectorConfig
	logger  *slog.Logger
	metrics *Metrics

	mu      sync.RWMutex
	streams map[string]*collectorStream
}

// collectorStream is the retained state of one logical stream.
type collectorStream struct {
	cfg    StreamConfig
	fold   folder
	agents map[string]agentState // latest state per agent, by (Boot, Seq)
}

// agentState is one agent's newest shipped summary, decoded once on
// arrival. The stored Summary's Payload is blanked — the decoded
// estimator is the retained representation. lastSeen timestamps the
// acceptance, the staleness clock MaxSummaryAge runs against.
type agentState struct {
	sum      Summary
	decoded  estimator.Estimator
	lastSeen time.Time
}

// NewCollector builds a collector. With a SnapshotDir configured it
// restores the last durability checkpoint: a valid snapshot repopulates
// the whole retained table, anything else (missing integrity trailer,
// truncation, bit flips, invalid entries) is abandoned whole and the
// collector starts empty with a warning — never a partial table.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = 30 * time.Second
	}
	logger := cfg.Logger
	if logger == nil {
		logger = discardLogger()
	}
	c := &Collector{
		cfg:     cfg,
		logger:  logger.With("role", "collector"),
		metrics: newMetrics(),
		streams: make(map[string]*collectorStream),
	}
	c.registerAgentMetrics()
	if cfg.SnapshotDir != "" {
		switch n, err := c.RestoreSnapshot(); {
		case err != nil:
			c.logger.Warn("snapshot restore failed; starting empty", "err", err)
		case n > 0:
			c.logger.Info("snapshot restored", "entries", n, "path", c.snapshotPath())
		}
	}
	return c
}

// registerAgentMetrics surfaces the collector's retained fleet state as
// dynamic gauges, read under the stream lock at scrape time: per-agent
// last-seen age (the raw staleness clock), a per-agent stale flag, and
// per-stream retained/stale agent counts. Series are emitted in sorted
// (stream, agent) order so scrapes are deterministic.
func (c *Collector) registerAgentMetrics() {
	reg := c.metrics.reg
	perAgent := func(emit func(v float64, labels ...obs.Label), read func(st agentState, now time.Time) float64) {
		now := c.cfg.Now()
		c.mu.RLock()
		defer c.mu.RUnlock()
		for _, name := range sortedKeys(c.streams) {
			st := c.streams[name]
			for _, id := range sortedKeys(st.agents) {
				emit(read(st.agents[id], now),
					obs.Label{Key: "agent", Value: id}, obs.Label{Key: "stream", Value: name})
			}
		}
	}
	reg.SetFunc("collector_agent_last_seen_age_seconds",
		"seconds since each retained agent's newest accepted summary", obs.KindGauge,
		func(emit func(v float64, labels ...obs.Label)) {
			perAgent(emit, func(st agentState, now time.Time) float64 {
				return now.Sub(st.lastSeen).Seconds()
			})
		})
	reg.SetFunc("collector_agent_stale",
		"1 if the agent's retained summary has outlived max-summary-age, else 0", obs.KindGauge,
		func(emit func(v float64, labels ...obs.Label)) {
			perAgent(emit, func(st agentState, now time.Time) float64 {
				if c.stale(st, now) {
					return 1
				}
				return 0
			})
		})
	perStream := func(emit func(v float64, labels ...obs.Label), read func(st *collectorStream, now time.Time) float64) {
		now := c.cfg.Now()
		c.mu.RLock()
		defer c.mu.RUnlock()
		for _, name := range sortedKeys(c.streams) {
			emit(read(c.streams[name], now), obs.Label{Key: "stream", Value: name})
		}
	}
	reg.SetFunc("collector_agents", "retained agents, by stream", obs.KindGauge,
		func(emit func(v float64, labels ...obs.Label)) {
			perStream(emit, func(st *collectorStream, _ time.Time) float64 {
				return float64(len(st.agents))
			})
		})
	reg.SetFunc("collector_stale_agents",
		"retained agents currently excluded from estimates as stale, by stream", obs.KindGauge,
		func(emit func(v float64, labels ...obs.Label)) {
			perStream(emit, func(st *collectorStream, now time.Time) float64 {
				n := 0
				for _, state := range st.agents {
					if c.stale(state, now) {
						n++
					}
				}
				return float64(n)
			})
		})
}

// sortedKeys returns m's keys in sorted order — scrape determinism for
// the dynamic gauge families.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Metrics exposes the collector's instrument panel.
func (c *Collector) Metrics() *Metrics { return c.metrics }

// Handler returns the collector's HTTP API.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/collect", c.handleCollect)
	mux.HandleFunc("GET /v1/streams", c.handleList)
	mux.HandleFunc("GET /v1/streams/{name}/estimate", c.handleEstimate)
	mux.HandleFunc("GET /v1/subsetsum", c.handleSubsetSum)
	mux.HandleFunc("DELETE /v1/streams/{name}", c.handleDelete)
	addOps(mux, "collector", c.metrics)
	return withRequestLog(c.logger, mux)
}

// stale reports whether an agent's retained state has outlived
// MaxSummaryAge as of now.
func (c *Collector) stale(st agentState, now time.Time) bool {
	return c.cfg.MaxSummaryAge > 0 && now.Sub(st.lastSeen) > c.cfg.MaxSummaryAge
}

// Accept folds one shipped summary into the retained state: first sight
// of a stream adopts its configuration, later summaries must match it,
// and per-agent ordering is by (Boot, Seq) — a higher Boot is a
// restarted agent whose fresh state replaces the old incarnation's,
// while within one incarnation stale or replayed shipments are ignored.
// Both properties together make shipping idempotent and restart-safe.
func (c *Collector) Accept(sum Summary) error {
	_, err := c.accept(sum, c.cfg.Now(), len(sum.Payload))
	return err
}

// accept is Accept plus observability: it reports which
// summaries_rejected cause a failure maps to and records the "fold" leg
// of the shipment's trace — decode and trial-fold latency, end-to-end
// time from the agent's flush stamp, and the error if rejected.
func (c *Collector) accept(sum Summary, arrival time.Time, bytes int) (cause string, err error) {
	span := obs.Span{
		TraceID: sum.TraceID,
		Stage:   "fold",
		Stream:  sum.Stream,
		Agent:   sum.Agent,
		Start:   arrival,
		Bytes:   bytes,
	}
	if !sum.FlushedAt.IsZero() {
		span.E2ENs = arrival.Sub(sum.FlushedAt).Nanoseconds()
	}
	defer func() {
		if err != nil {
			span.Err = err.Error()
		}
		c.metrics.Trace.Record(span)
	}()
	if sum.Stream == "" || sum.Agent == "" {
		return causeConfig, fmt.Errorf("summary must name a stream and an agent")
	}
	cfg := sum.Config.withDefaults()
	if err := cfg.validate(); err != nil {
		return causeConfig, fmt.Errorf("summary config: %w", err)
	}
	// Decode through the registry's single entry point, then trial-fold
	// eagerly: a corrupt payload, one of the wrong kind for the declared
	// stat, or one whose estimator disagrees with the declared config
	// (wrong p, foreign hash seeds, mismatched window shape) is rejected
	// at the door rather than poisoning every later estimate query. The
	// decoded estimator — not the bytes — is what the collector retains.
	fold := buildFolder(cfg)
	t0 := time.Now()
	decoded, err := estimator.Decode(sum.Payload)
	span.DecodeNs = time.Since(t0).Nanoseconds()
	c.metrics.CollectDecode.Since(t0)
	if err != nil {
		return causePayload, fmt.Errorf("summary payload: %w", err)
	}
	t0 = time.Now()
	_, foldErr := fold.foldDecoded([]estimator.Estimator{decoded})
	span.FoldNs = time.Since(t0).Nanoseconds()
	c.metrics.CollectFold.Since(t0)
	if foldErr != nil {
		return causePayload, fmt.Errorf("summary payload does not match its declared config: %w", foldErr)
	}
	sum.Payload = nil // retained via decoded; drop the byte copy

	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.streams[sum.Stream]
	if !ok {
		st = &collectorStream{cfg: cfg, fold: fold, agents: make(map[string]agentState)}
		c.streams[sum.Stream] = st
	} else if !st.cfg.sharedEquals(cfg) {
		return causeConflict, fmt.Errorf("stream %q: agent %q ships config incompatible with the registered one",
			sum.Stream, sum.Agent)
	}
	if prev, ok := st.agents[sum.Agent]; ok {
		// Within one incarnation Seq orders shipments; ANY Boot change is
		// treated as a newer incarnation and replaces the retained state.
		// (Comparing Boot values numerically would break when a restarted
		// host's clock stepped backwards; a cross-incarnation late
		// delivery can briefly win instead, but the live process's next
		// flush repairs that, while a clock step would never heal.)
		if prev.sum.Boot == sum.Boot && prev.sum.Seq >= sum.Seq {
			return "", nil // stale duplicate; newest state retained
		}
	}
	st.agents[sum.Agent] = agentState{sum: sum, decoded: decoded, lastSeen: c.cfg.Now()}
	return "", nil
}

// GlobalEstimate is the collector's answer for one stream: the folded
// estimates plus the contributing agents' ingest totals, all captured
// under one lock so the numbers are mutually consistent.
type GlobalEstimate struct {
	Estimates Estimates
	Agents    int
	// Skipped counts retained agents excluded from this fold because
	// their newest summary outlived MaxSummaryAge.
	Skipped int
	Fed     uint64
	Kept    uint64
}

// Estimate folds the latest summary of every fresh agent of the stream
// into the global estimate. Agents whose retained state has outlived
// MaxSummaryAge are skipped (and counted), so a long-dead agent cannot
// silently pin the estimate to its final snapshot.
func (c *Collector) Estimate(name string) (GlobalEstimate, error) {
	c.mu.RLock()
	st, ok := c.streams[name]
	if !ok {
		c.mu.RUnlock()
		return GlobalEstimate{}, fmt.Errorf("unknown stream %q", name)
	}
	now := c.cfg.Now()
	// Fold in sorted agent order so repeated queries are deterministic.
	agents := make([]string, 0, len(st.agents))
	var out GlobalEstimate
	for id, state := range st.agents {
		if c.stale(state, now) {
			out.Skipped++
			continue
		}
		agents = append(agents, id)
	}
	sort.Strings(agents)
	out.Agents = len(agents)
	states := make([]estimator.Estimator, len(agents))
	for i, id := range agents {
		state := st.agents[id]
		states[i] = state.decoded
		out.Fed += state.sum.Fed
		out.Kept += state.sum.Kept
	}
	fold := st.fold
	c.mu.RUnlock()

	if len(states) == 0 && out.Skipped > 0 {
		return out, fmt.Errorf("stream %q: all %d retained summaries are older than the max age",
			name, out.Skipped)
	}
	est, err := fold.foldDecoded(states)
	out.Estimates = est
	return out, err
}

func (c *Collector) handleCollect(w http.ResponseWriter, r *http.Request) {
	var sum Summary
	arrival := time.Now()
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, maxSummaryBytes)}
	if err := json.NewDecoder(body).Decode(&sum); err != nil {
		c.metrics.CollectRejects.With(causeEnvelope).Inc()
		writeError(w, http.StatusBadRequest, "bad summary: %v", err)
		return
	}
	c.metrics.SummaryBytesIn.Add(uint64(body.n))
	if cause, err := c.accept(sum, arrival, int(body.n)); err != nil {
		c.metrics.CollectRejects.With(cause).Inc()
		c.logger.Warn("summary rejected",
			"stream", sum.Stream, "agent", sum.Agent, "cause", cause, "err", err)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.metrics.SummariesIn.Inc()
	writeJSON(w, http.StatusAccepted, map[string]string{
		"stream": sum.Stream, "agent": sum.Agent, "status": "accepted",
	})
}

// agentInfo is one agent's row in the collector's list response.
type agentInfo struct {
	Agent    string    `json:"agent"`
	Seq      uint64    `json:"seq"`
	Epoch    uint64    `json:"epoch,omitempty"`
	Fed      uint64    `json:"fed"`
	Kept     uint64    `json:"kept"`
	LastSeen time.Time `json:"last_seen"`
	Stale    bool      `json:"stale,omitempty"`
}

// collectorInfo is one row of the collector's list response.
type collectorInfo struct {
	Name   string       `json:"name"`
	Config StreamConfig `json:"config"`
	Agents int          `json:"agents"`
	Fed    uint64       `json:"fed"`
	Kept   uint64       `json:"kept"`
	Detail []agentInfo  `json:"agent_detail"`
}

func (c *Collector) handleList(w http.ResponseWriter, _ *http.Request) {
	c.mu.RLock()
	now := c.cfg.Now()
	var out []collectorInfo
	for name, st := range c.streams {
		info := collectorInfo{Name: name, Config: st.cfg, Agents: len(st.agents)}
		for id, state := range st.agents {
			info.Fed += state.sum.Fed
			info.Kept += state.sum.Kept
			info.Detail = append(info.Detail, agentInfo{
				Agent:    id,
				Seq:      state.sum.Seq,
				Epoch:    state.sum.Epoch,
				Fed:      state.sum.Fed,
				Kept:     state.sum.Kept,
				LastSeen: state.lastSeen,
				Stale:    c.stale(state, now),
			})
		}
		sort.Slice(info.Detail, func(i, j int) bool { return info.Detail[i].Agent < info.Detail[j].Agent })
		out = append(out, info)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"streams": out})
}

// handleDelete drops a stream's retained state. This is the operator's
// recovery path after a coordinated configuration change: the collector
// pins the config it first saw and rejects mismatched shipments, so
// reconfigured fleets delete the stream here and let the agents' next
// flush re-register it under the new config.
func (c *Collector) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	c.mu.Lock()
	_, ok := c.streams[name]
	delete(c.streams, name)
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"stream": name, "status": "deleted"})
}

func (c *Collector) handleEstimate(w http.ResponseWriter, r *http.Request) {
	c.metrics.EstimateQueries.Inc()
	name := r.PathValue("name")
	global, err := c.Estimate(name)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case global.Skipped > 0 && global.Agents == 0:
			// Known stream, fleet-wide silence: distinct from an
			// unregistered stream so monitors can alert instead of
			// treating it as "not rolled out yet".
			status = http.StatusServiceUnavailable
		case global.Agents == 0:
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stream": name, "agents": global.Agents, "skipped_stale": global.Skipped,
		"fed": global.Fed, "kept": global.Kept, "estimates": global.Estimates,
	})
}
