package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"substream/internal/estimator"
)

// Collector is the monitoring daemon's aggregation role: it retains the
// latest shipped summary per (stream, agent) and folds them on demand
// into the global estimate — the central site of the paper's
// sampled-NetFlow scenario.
type Collector struct {
	metrics *Metrics

	mu      sync.RWMutex
	streams map[string]*collectorStream
}

// collectorStream is the retained state of one logical stream.
type collectorStream struct {
	cfg    StreamConfig
	fold   folder
	agents map[string]agentState // latest state per agent, by (Boot, Seq)
}

// agentState is one agent's newest shipped summary, decoded once on
// arrival. The stored Summary's Payload is blanked — the decoded
// estimator is the retained representation.
type agentState struct {
	sum     Summary
	decoded estimator.Estimator
}

// NewCollector builds a collector.
func NewCollector() *Collector {
	return &Collector{metrics: newMetrics(), streams: make(map[string]*collectorStream)}
}

// Metrics exposes the collector's instrument panel.
func (c *Collector) Metrics() *Metrics { return c.metrics }

// Handler returns the collector's HTTP API.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/collect", c.handleCollect)
	mux.HandleFunc("GET /v1/streams", c.handleList)
	mux.HandleFunc("GET /v1/streams/{name}/estimate", c.handleEstimate)
	mux.HandleFunc("DELETE /v1/streams/{name}", c.handleDelete)
	addOps(mux, "collector", c.metrics)
	return mux
}

// Accept folds one shipped summary into the retained state: first sight
// of a stream adopts its configuration, later summaries must match it,
// and per-agent ordering is by (Boot, Seq) — a higher Boot is a
// restarted agent whose fresh state replaces the old incarnation's,
// while within one incarnation stale or replayed shipments are ignored.
// Both properties together make shipping idempotent and restart-safe.
func (c *Collector) Accept(sum Summary) error {
	if sum.Stream == "" || sum.Agent == "" {
		return fmt.Errorf("summary must name a stream and an agent")
	}
	cfg := sum.Config.withDefaults()
	if err := cfg.validate(); err != nil {
		return fmt.Errorf("summary config: %w", err)
	}
	// Decode through the registry's single entry point, then trial-fold
	// eagerly: a corrupt payload, one of the wrong kind for the declared
	// stat, or one whose estimator disagrees with the declared config
	// (wrong p, foreign hash seeds) is rejected at the door rather than
	// poisoning every later estimate query. The decoded estimator — not
	// the bytes — is what the collector retains.
	fold := buildFolder(cfg)
	decoded, err := estimator.Decode(sum.Payload)
	if err != nil {
		return fmt.Errorf("summary payload: %w", err)
	}
	if _, err := fold.foldDecoded([]estimator.Estimator{decoded}); err != nil {
		return fmt.Errorf("summary payload does not match its declared config: %w", err)
	}
	sum.Payload = nil // retained via decoded; drop the byte copy

	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.streams[sum.Stream]
	if !ok {
		st = &collectorStream{cfg: cfg, fold: fold, agents: make(map[string]agentState)}
		c.streams[sum.Stream] = st
	} else if !st.cfg.sharedEquals(cfg) {
		return fmt.Errorf("stream %q: agent %q ships config incompatible with the registered one",
			sum.Stream, sum.Agent)
	}
	if prev, ok := st.agents[sum.Agent]; ok {
		// Within one incarnation Seq orders shipments; ANY Boot change is
		// treated as a newer incarnation and replaces the retained state.
		// (Comparing Boot values numerically would break when a restarted
		// host's clock stepped backwards; a cross-incarnation late
		// delivery can briefly win instead, but the live process's next
		// flush repairs that, while a clock step would never heal.)
		if prev.sum.Boot == sum.Boot && prev.sum.Seq >= sum.Seq {
			return nil // stale duplicate; newest state retained
		}
	}
	st.agents[sum.Agent] = agentState{sum: sum, decoded: decoded}
	return nil
}

// GlobalEstimate is the collector's answer for one stream: the folded
// estimates plus the contributing agents' ingest totals, all captured
// under one lock so the numbers are mutually consistent.
type GlobalEstimate struct {
	Estimates Estimates
	Agents    int
	Fed       uint64
	Kept      uint64
}

// Estimate folds the latest summary of every agent of the stream into
// the global estimate.
func (c *Collector) Estimate(name string) (GlobalEstimate, error) {
	c.mu.RLock()
	st, ok := c.streams[name]
	if !ok {
		c.mu.RUnlock()
		return GlobalEstimate{}, fmt.Errorf("unknown stream %q", name)
	}
	// Fold in sorted agent order so repeated queries are deterministic.
	agents := make([]string, 0, len(st.agents))
	for id := range st.agents {
		agents = append(agents, id)
	}
	sort.Strings(agents)
	out := GlobalEstimate{Agents: len(agents)}
	states := make([]estimator.Estimator, len(agents))
	for i, id := range agents {
		state := st.agents[id]
		states[i] = state.decoded
		out.Fed += state.sum.Fed
		out.Kept += state.sum.Kept
	}
	fold := st.fold
	c.mu.RUnlock()

	est, err := fold.foldDecoded(states)
	out.Estimates = est
	return out, err
}

func (c *Collector) handleCollect(w http.ResponseWriter, r *http.Request) {
	var sum Summary
	body := http.MaxBytesReader(w, r.Body, maxSummaryBytes)
	if err := json.NewDecoder(body).Decode(&sum); err != nil {
		c.metrics.CollectRejects.Add(1)
		writeError(w, http.StatusBadRequest, "bad summary: %v", err)
		return
	}
	if err := c.Accept(sum); err != nil {
		c.metrics.CollectRejects.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.metrics.SummariesIn.Add(1)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"stream": sum.Stream, "agent": sum.Agent, "status": "accepted",
	})
}

// collectorInfo is one row of the collector's list response.
type collectorInfo struct {
	Name   string       `json:"name"`
	Config StreamConfig `json:"config"`
	Agents int          `json:"agents"`
	Fed    uint64       `json:"fed"`
	Kept   uint64       `json:"kept"`
}

func (c *Collector) handleList(w http.ResponseWriter, _ *http.Request) {
	c.mu.RLock()
	var out []collectorInfo
	for name, st := range c.streams {
		info := collectorInfo{Name: name, Config: st.cfg, Agents: len(st.agents)}
		for _, state := range st.agents {
			info.Fed += state.sum.Fed
			info.Kept += state.sum.Kept
		}
		out = append(out, info)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"streams": out})
}

// handleDelete drops a stream's retained state. This is the operator's
// recovery path after a coordinated configuration change: the collector
// pins the config it first saw and rejects mismatched shipments, so
// reconfigured fleets delete the stream here and let the agents' next
// flush re-register it under the new config.
func (c *Collector) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	c.mu.Lock()
	_, ok := c.streams[name]
	delete(c.streams, name)
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"stream": name, "status": "deleted"})
}

func (c *Collector) handleEstimate(w http.ResponseWriter, r *http.Request) {
	c.metrics.EstimateQueries.Add(1)
	name := r.PathValue("name")
	global, err := c.Estimate(name)
	if err != nil {
		status := http.StatusInternalServerError
		if global.Agents == 0 {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stream": name, "agents": global.Agents, "fed": global.Fed,
		"kept": global.Kept, "estimates": global.Estimates,
	})
}
