package faults

import (
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// okUpstream is a live upstream that counts the requests it actually
// processes — the ground truth a chaos run's Stats are checked against.
func okUpstream(t *testing.T, body string) (*httptest.Server, *atomic.Uint64) {
	t.Helper()
	var processed atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		processed.Add(1)
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts, &processed
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return client.Do(req)
}

// TestPlanRoundTrip pins the wire encoding: marshal → unmarshal is the
// identity for a fully populated plan.
func TestPlanRoundTrip(t *testing.T) {
	p := Plan{
		Seed: 42, Drop: 0.3, Delay: 0.25, MaxDelay: 5 * time.Millisecond,
		Err5xx: 0.1, Reset: 0.05, Truncate: 0.02,
	}
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip: got %+v, want %+v", got, p)
	}
}

// TestPlanDecodeRejects sweeps the malformed-input classes every decoder
// in this repository must fail cleanly on.
func TestPlanDecodeRejects(t *testing.T) {
	good, err := Plan{Seed: 7, Drop: 0.5}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte{'X', 'P'}, good[2:]...)},
		{"bad version", append([]byte{'F', 'P', 99}, good[3:]...)},
		{"trailing bytes", append(append([]byte{}, good...), 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalPlan(tc.data); err == nil {
				t.Fatal("decode accepted malformed plan")
			}
		})
	}
	// Every truncation of a valid plan fails cleanly.
	for n := 0; n < len(good); n++ {
		if _, err := UnmarshalPlan(good[:n]); err == nil {
			t.Fatalf("decode accepted %d-byte truncation", n)
		}
	}
	// A structurally valid plan with an out-of-range probability fails
	// Validate at decode time.
	bad := Plan{Seed: 1, Drop: 0.5}
	data, _ := bad.MarshalBinary()
	// Drop sits after magic(2)+version(1)+seed(8); overwrite with 2.0.
	for i, b := range f64bytes(2.0) {
		data[11+i] = b
	}
	if _, err := UnmarshalPlan(data); err == nil {
		t.Fatal("decode accepted probability 2.0")
	}
}

func f64bytes(v float64) [8]byte {
	var out [8]byte
	bits := math.Float64bits(v)
	for i := range out {
		out[i] = byte(bits >> (8 * i))
	}
	return out
}

// TestPlanValidate covers the rejection table.
func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
		ok   bool
	}{
		{"zero", Plan{}, true},
		{"full", Plan{Drop: 1, Delay: 1, MaxDelay: time.Millisecond, Err5xx: 1, Reset: 1, Truncate: 1}, true},
		{"negative", Plan{Drop: -0.1}, false},
		{"above one", Plan{Truncate: 1.5}, false},
		{"nan", Plan{Reset: math.NaN()}, false},
		{"delay without bound", Plan{Delay: 0.5}, false},
		{"negative max delay", Plan{MaxDelay: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

// TestTransportDeterministic replays one seed twice against a live
// upstream and checks the two runs draw the identical fault sequence.
func TestTransportDeterministic(t *testing.T) {
	ts, _ := okUpstream(t, "ok")
	plan := Plan{Seed: 99, Drop: 0.4, Err5xx: 0.2}
	run := func() []bool {
		tr := NewTransport(plan, nil)
		client := &http.Client{Transport: tr}
		var fates []bool
		for i := 0; i < 64; i++ {
			resp, err := get(t, client, ts.URL)
			ok := err == nil && resp.StatusCode == http.StatusOK
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			fates = append(fates, ok)
		}
		return fates
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: fate diverged across identically seeded runs", i)
		}
	}
	// A 40%+20% fault plan over 64 requests leaves both outcomes
	// represented — the sequence is mixed, not degenerate.
	succ := 0
	for _, ok := range a {
		if ok {
			succ++
		}
	}
	if succ == 0 || succ == len(a) {
		t.Fatalf("degenerate fault sequence: %d/%d successes", succ, len(a))
	}
}

// TestTransportModes drives each failure mode at probability 1 and
// checks its observable contract: whether the upstream processed the
// request, and what the client saw.
func TestTransportModes(t *testing.T) {
	body := strings.Repeat("x", 4096)

	t.Run("drop never reaches upstream", func(t *testing.T) {
		ts, processed := okUpstream(t, body)
		tr := NewTransport(Plan{Drop: 1}, nil)
		if _, err := get(t, &http.Client{Transport: tr}, ts.URL); err == nil {
			t.Fatal("dropped request returned a response")
		}
		if processed.Load() != 0 {
			t.Fatal("dropped request reached the upstream")
		}
		if s := tr.Stats(); s.Dropped != 1 || s.Forwarded != 0 {
			t.Fatalf("stats: %+v", s)
		}
	})

	t.Run("err5xx never reaches upstream", func(t *testing.T) {
		ts, processed := okUpstream(t, body)
		tr := NewTransport(Plan{Err5xx: 1}, nil)
		resp, err := get(t, &http.Client{Transport: tr}, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		if processed.Load() != 0 {
			t.Fatal("rejected request reached the upstream")
		}
	})

	t.Run("reset processes but fails the client", func(t *testing.T) {
		ts, processed := okUpstream(t, body)
		tr := NewTransport(Plan{Reset: 1}, nil)
		if _, err := get(t, &http.Client{Transport: tr}, ts.URL); err == nil {
			t.Fatal("reset request returned a response")
		}
		if processed.Load() != 1 {
			t.Fatalf("reset request processed %d times, want 1 (the ack-loss case)", processed.Load())
		}
	})

	t.Run("truncate cuts the body mid-read", func(t *testing.T) {
		ts, processed := okUpstream(t, body)
		tr := NewTransport(Plan{Truncate: 1}, nil)
		resp, err := get(t, &http.Client{Transport: tr}, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err == nil {
			t.Fatal("truncated body read to a clean EOF")
		}
		if len(data) >= len(body) {
			t.Fatalf("truncated body delivered %d of %d bytes", len(data), len(body))
		}
		if processed.Load() != 1 {
			t.Fatal("truncated request did not reach the upstream")
		}
	})

	t.Run("delay stalls but succeeds", func(t *testing.T) {
		ts, processed := okUpstream(t, body)
		tr := NewTransport(Plan{Delay: 1, MaxDelay: 2 * time.Millisecond}, nil)
		resp, err := get(t, &http.Client{Transport: tr}, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if processed.Load() != 1 || tr.Stats().Delayed != 1 {
			t.Fatalf("delayed request: processed=%d stats=%+v", processed.Load(), tr.Stats())
		}
	})
}

// TestTransportOutage checks SetDown forces total loss and that
// reviving restores the seeded sequence exactly where it paused: coins
// are not consumed during the outage.
func TestTransportOutage(t *testing.T) {
	ts, processed := okUpstream(t, "ok")
	plan := Plan{Seed: 3, Drop: 0.5}

	// Reference: the fates of requests 0..19 with no outage.
	ref := NewTransport(plan, nil)
	client := &http.Client{Transport: ref}
	var want []bool
	for i := 0; i < 20; i++ {
		resp, err := get(t, client, ts.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		want = append(want, err == nil)
	}

	// Same seed, with an outage injected between coins 10 and 11.
	tr := NewTransport(plan, nil)
	client = &http.Client{Transport: tr}
	var got []bool
	for i := 0; i < 20; i++ {
		if i == 10 {
			tr.SetDown(true)
			for j := 0; j < 5; j++ {
				if _, err := get(t, client, ts.URL); err == nil {
					t.Fatal("request during outage succeeded")
				}
			}
			if !tr.Down() {
				t.Fatal("Down() false during outage")
			}
			tr.SetDown(false)
		}
		resp, err := get(t, client, ts.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		got = append(got, err == nil)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d: outage shifted the seeded fault sequence", i)
		}
	}
	if processed.Load() == 0 {
		t.Fatal("no request reached the upstream")
	}
}

// TestProxy drives the reverse-proxy form: injected connection faults
// surface as 502, scripted outages apply, and clean requests pass.
func TestProxy(t *testing.T) {
	ts, _ := okUpstream(t, "hello")
	target, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	handler, tr := NewProxy(target, Plan{Seed: 1})
	ps := httptest.NewServer(handler)
	defer ps.Close()

	resp, err := http.Get(ps.URL)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(data) != "hello" {
		t.Fatalf("clean proxy request: status %d body %q", resp.StatusCode, data)
	}

	tr.SetDown(true)
	resp, err = http.Get(ps.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("outage through proxy: status %d, want 502", resp.StatusCode)
	}
}

// TestInjectedErrorsAreErrors pins that injected failures are ordinary
// errors a retry loop can match on — not panics, not typed surprises.
func TestInjectedErrorsAreErrors(t *testing.T) {
	var err error = errInjected{mode: "drop"}
	if !strings.Contains(err.Error(), "injected drop") {
		t.Fatalf("error text: %q", err)
	}
	var inj errInjected
	if !errors.As(err, &inj) {
		t.Fatal("errors.As failed on errInjected")
	}
}
