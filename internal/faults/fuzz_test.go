package faults

import (
	"bytes"
	"testing"
	"time"
)

// FuzzPlanDecode fuzzes the plan decoder with the same contract as the
// estimator payload fuzzers: arbitrary input must either fail cleanly
// or decode to a plan that validates and re-encodes canonically. Runs
// in CI's fuzz-smoke loop alongside the estimator targets.
func FuzzPlanDecode(f *testing.F) {
	seed, err := Plan{
		Seed: 42, Drop: 0.3, Delay: 0.25, MaxDelay: 5 * time.Millisecond,
		Err5xx: 0.1, Reset: 0.05, Truncate: 0.02,
	}.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{'F', 'P', 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPlan(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoded plan fails Validate: %v", err)
		}
		out, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded plan fails to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("re-encode is not canonical:\n in  %x\n out %x", data, out)
		}
	})
}
