// Package faults is the deterministic fault-injection harness the
// chaos tests drive the daemon through: a seeded plan of network
// failure modes (drops, delays, 5xx rejections, connection resets,
// truncated responses) applied by an http.RoundTripper or a reverse
// proxy, so "collector dead for three ticks" and "30% of shipments
// lost" are reproducible test inputs instead of flaky sleeps.
//
// Determinism is the point. A Plan carries a seed; every request draws
// its fate from one mutex-guarded generator in arrival order, so a
// single-goroutine driver replays the identical fault sequence on
// every run, and the convergence bounds the e2e tests assert ("within
// k flush ticks") are real guarantees of the recovery logic, not
// timing accidents.
//
// The injected failure modes are chosen to cover the distinct ways a
// shipment can half-happen:
//
//   - drop: the request never reaches the upstream (connect failure).
//   - delay: the request is stalled before forwarding (latency, not loss).
//   - err5xx: the upstream answers 503 without seeing the request — a
//     dead or overloaded collector behind a live load balancer.
//   - reset: the upstream PROCESSES the request but the response is
//     lost (connection reset after send) — the ack-loss case that
//     makes non-idempotent shipping double-count; cumulative
//     latest-wins shipping must shrug it off.
//   - truncate: the response arrives cut short (mid-body disconnect).
package faults

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"substream/internal/rng"
	"substream/internal/sketch"
)

// Plan is one seeded chaos schedule: independent probabilities for each
// failure mode, drawn per request in arrival order from a generator
// seeded with Seed. Probabilities are checked in declaration order
// (Drop, Err5xx, Reset, Truncate — Delay is drawn independently and
// composes with any of them), and at most one terminal fault applies
// per request.
type Plan struct {
	// Seed seeds the per-request fault coins; equal seeds replay equal
	// fault sequences for equal request orders.
	Seed uint64 `json:"seed"`
	// Drop is the probability a request never reaches the upstream.
	Drop float64 `json:"drop,omitempty"`
	// Delay is the probability a request is stalled before forwarding.
	Delay float64 `json:"delay,omitempty"`
	// MaxDelay bounds the injected stall; each delayed request sleeps a
	// uniform duration in (0, MaxDelay]. Required when Delay > 0.
	MaxDelay time.Duration `json:"max_delay,omitempty"`
	// Err5xx is the probability the upstream answers 503 without
	// processing the request.
	Err5xx float64 `json:"err_5xx,omitempty"`
	// Reset is the probability the upstream processes the request but
	// the client sees a connection error instead of the response.
	Reset float64 `json:"reset,omitempty"`
	// Truncate is the probability the response body is cut to half its
	// length mid-flight.
	Truncate float64 `json:"truncate,omitempty"`
}

// Validate rejects plans the transport could not execute: probabilities
// outside [0, 1] and delayed plans without a positive bound.
func (p Plan) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"drop", p.Drop}, {"delay", p.Delay}, {"err_5xx", p.Err5xx},
		{"reset", p.Reset}, {"truncate", p.Truncate},
	} {
		if math.IsNaN(f.v) || f.v < 0 || f.v > 1 {
			return fmt.Errorf("faults: %s probability must be in [0, 1], got %v", f.name, f.v)
		}
	}
	if p.Delay > 0 && p.MaxDelay <= 0 {
		return fmt.Errorf("faults: delay probability %v needs a positive max_delay", p.Delay)
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("faults: max_delay must be >= 0, got %v", p.MaxDelay)
	}
	return nil
}

// Wire format: plans travel between test harnesses and CLI flags as a
// compact versioned binary blob, built from the same Writer/Reader
// primitives as the estimator payloads (and fuzzed the same way —
// corrupt plans must fail cleanly, never panic).
const (
	// planMagic0/planMagic1 prefix every serialized plan ("FP"). Plans
	// are not estimator payloads — they never enter the estimator
	// registry — so the prefix deliberately sits outside the registry's
	// partitioned tag ranges.
	planMagic0 byte = 'F'
	planMagic1 byte = 'P'
	// planVersion is the plan wire version; decoders reject others.
	planVersion byte = 1
)

// MarshalBinary serializes the plan.
func (p Plan) MarshalBinary() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var w sketch.Writer
	w.U8(planMagic0)
	w.U8(planMagic1)
	w.U8(planVersion)
	w.U64(p.Seed)
	w.F64(p.Drop)
	w.F64(p.Delay)
	w.I64(int64(p.MaxDelay))
	w.F64(p.Err5xx)
	w.F64(p.Reset)
	w.F64(p.Truncate)
	return w.Bytes(), nil
}

// UnmarshalPlan decodes a serialized plan, rejecting bad magic, unknown
// versions, truncation, trailing bytes, and any field Validate would
// refuse — the same clean-failure discipline as the estimator decoders.
func UnmarshalPlan(data []byte) (Plan, error) {
	r := sketch.NewReader(data)
	if m0, m1 := r.U8(), r.U8(); r.Err() != nil || m0 != planMagic0 || m1 != planMagic1 {
		return Plan{}, fmt.Errorf("faults: bad plan magic")
	}
	if v := r.U8(); r.Err() != nil || v != planVersion {
		return Plan{}, fmt.Errorf("faults: unsupported plan version %d", v)
	}
	var p Plan
	p.Seed = r.U64()
	p.Drop = r.F64()
	p.Delay = r.F64()
	p.MaxDelay = time.Duration(r.I64())
	p.Err5xx = r.F64()
	p.Reset = r.F64()
	p.Truncate = r.F64()
	if err := r.Err(); err != nil {
		return Plan{}, fmt.Errorf("faults: plan: %w", err)
	}
	if r.Remaining() != 0 {
		return Plan{}, fmt.Errorf("faults: plan has %d trailing bytes", r.Remaining())
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Stats counts what the transport actually did — the test-side ledger
// for asserting a chaos run exercised the modes it claimed to.
type Stats struct {
	Requests  uint64
	Dropped   uint64
	Delayed   uint64
	Rejected  uint64 // synthesized 5xx
	Reset     uint64 // forwarded, response discarded
	Truncated uint64
	Forwarded uint64 // reached the upstream (including reset/truncated)
}

// Transport is a chaos http.RoundTripper: it applies one seeded Plan in
// request-arrival order in front of a real transport. Safe for
// concurrent use; concurrent callers serialize on the fault coins, so
// single-goroutine drivers are fully deterministic.
type Transport struct {
	next http.RoundTripper
	plan Plan

	mu  sync.Mutex
	rng *rng.Xoshiro256

	down atomic.Bool

	requests, dropped, delayed, rejected, resets, truncated, forwarded atomic.Uint64
}

// errInjected is the connection-level error the transport synthesizes
// for drops, outages, and resets.
type errInjected struct{ mode string }

func (e errInjected) Error() string { return "faults: injected " + e.mode }

// NewTransport builds a chaos transport over next (nil means
// http.DefaultTransport). It panics on an invalid plan: transports are
// built in test and harness setup, where a bad plan is a programming
// error that must not ship.
func NewTransport(plan Plan, next http.RoundTripper) *Transport {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{next: next, plan: plan, rng: rng.New(plan.Seed)}
}

// SetDown forces a total outage: while down, every request fails with a
// connection error without reaching the upstream and without consuming
// fault coins — so scripted kill windows ("collector dead for k flush
// ticks") do not shift the seeded fault sequence around them.
func (t *Transport) SetDown(down bool) { t.down.Store(down) }

// Down reports whether the forced outage is active.
func (t *Transport) Down() bool { return t.down.Load() }

// decision is one request's drawn fate.
type decision struct {
	drop, reject, reset, truncate bool
	delay                         time.Duration
}

// decide draws one request's fate from the seeded generator. The draw
// order is fixed (delay coin, then the terminal-fault coin) so a plan
// with some probabilities zeroed still consumes the same coin count per
// request and stays comparable across configurations of one seed.
func (t *Transport) decide() decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d decision
	if t.plan.Delay > 0 && t.rng.Float64() < t.plan.Delay {
		d.delay = time.Duration(t.rng.Float64Open() * float64(t.plan.MaxDelay))
		if d.delay <= 0 {
			d.delay = 1
		}
	} else if t.plan.Delay > 0 {
		// Burn the magnitude coin so delayed and undelayed requests
		// consume equally many draws.
		t.rng.Float64Open()
	}
	// One uniform coin picks among the terminal faults: the modes are
	// mutually exclusive by construction, so their probabilities
	// partition [0, 1).
	u := t.rng.Float64()
	switch {
	case u < t.plan.Drop:
		d.drop = true
	case u < t.plan.Drop+t.plan.Err5xx:
		d.reject = true
	case u < t.plan.Drop+t.plan.Err5xx+t.plan.Reset:
		d.reset = true
	case u < t.plan.Drop+t.plan.Err5xx+t.plan.Reset+t.plan.Truncate:
		d.truncate = true
	}
	return d
}

// RoundTrip applies the plan to one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	if t.down.Load() {
		t.dropped.Add(1)
		return nil, errInjected{mode: "outage"}
	}
	d := t.decide()
	if d.delay > 0 {
		t.delayed.Add(1)
		timer := time.NewTimer(d.delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	switch {
	case d.drop:
		t.dropped.Add(1)
		return nil, errInjected{mode: "drop"}
	case d.reject:
		t.rejected.Add(1)
		return synthesize503(req), nil
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	t.forwarded.Add(1)
	switch {
	case d.reset:
		// The upstream processed the request; the client never learns.
		// This is the ack-loss case idempotent shipping exists for.
		t.resets.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, errInjected{mode: "reset"}
	case d.truncate:
		t.truncated.Add(1)
		resp.Body = &truncatingBody{rc: resp.Body, remaining: truncateAt(resp.ContentLength)}
		// The advertised length no longer matches what the body will
		// deliver; -1 forces readers to hit the cut instead of their
		// own length check.
		resp.ContentLength = -1
		return resp, nil
	}
	return resp, nil
}

// Stats snapshots the transport's fault ledger.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:  t.requests.Load(),
		Dropped:   t.dropped.Load(),
		Delayed:   t.delayed.Load(),
		Rejected:  t.rejected.Load(),
		Reset:     t.resets.Load(),
		Truncated: t.truncated.Load(),
		Forwarded: t.forwarded.Load(),
	}
}

// synthesize503 builds the dead-collector response without forwarding.
func synthesize503(req *http.Request) *http.Response {
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(strings.NewReader("faults: injected 503\n")),
		ContentLength: -1,
		Request:       req,
	}
}

// truncateAt picks where a truncated response body is cut: half the
// advertised length, or a small fixed prefix when the length is
// unknown — either way strictly before the end of any non-trivial body.
func truncateAt(contentLength int64) int64 {
	if contentLength > 1 {
		return contentLength / 2
	}
	return 8
}

// truncatingBody delivers the first remaining bytes of the wrapped body
// and then fails with an injected error — a mid-body disconnect, not a
// clean EOF, so clients treat it as the transport fault it models.
type truncatingBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, errInjected{mode: "truncate"}
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF && b.remaining > 0 {
		// The true body ended before the cut; deliver the real EOF.
		return n, err
	}
	if b.remaining <= 0 && err == nil {
		err = errInjected{mode: "truncate"}
	}
	return n, err
}

func (b *truncatingBody) Close() error { return b.rc.Close() }

// NewProxy returns a chaos reverse proxy: an http.Handler that forwards
// to target through a Transport built from plan. The transport is
// returned too, so harnesses can script outages and read the fault
// ledger. Use it to wrap a collector when the client under test cannot
// be given a custom http.Client.
func NewProxy(target *url.URL, plan Plan) (http.Handler, *Transport) {
	t := NewTransport(plan, nil)
	proxy := httputil.NewSingleHostReverseProxy(target)
	proxy.Transport = t
	proxy.ErrorLog = nil // injected faults are expected; keep stderr quiet
	proxy.ErrorHandler = func(w http.ResponseWriter, _ *http.Request, _ error) {
		// Injected connection errors surface as 502 — what a real load
		// balancer in front of a dead collector would answer.
		w.WriteHeader(http.StatusBadGateway)
	}
	return proxy, t
}
