// Command substream runs the paper's estimators over a stream. It reads
// the ORIGINAL stream (file or stdin, one decimal item per line),
// Bernoulli-samples it at rate -p exactly as a sampled-NetFlow monitor
// would, feeds only the sampled stream to the chosen estimator, and
// prints estimate vs exact.
//
// The -stat flag accepts any kind registered with the internal/estimator
// registry (-list-estimators prints them); the paper's headline stats
// get bespoke exact-vs-estimate reporting, everything else prints its
// named estimates.
//
// With -shards N > 1 the stream is ingested through the sharded pipeline
// (internal/pipeline): batches of -batch items are dealt round-robin to N
// workers, each worker samples and feeds its own estimator replica, and
// the replicas are merged into one estimate — the single-machine version
// of the distributed-monitor deployment.
//
// With -window W the estimator is wrapped in an epoch ring
// (internal/window): the input is replayed in epochs of -epoch items,
// and alongside the cumulative estimates the output carries
// "window_"-prefixed estimates covering only the last W epochs — the
// batch-replay twin of the daemon's time-based windows.
//
// With -weighted the input is the weighted text format ("key weight"
// per line, weight column optional, default 1) and items carry their
// weights through the pipeline — pair with -stat varopt for a VarOpt
// reservoir whose subset sums estimate weighted totals.
//
// Usage:
//
//	substream -stat f2 -p 0.1 [-input stream.txt] [-k 3] [-alpha 0.05]
//	          [-shards 4] [-batch 1024] [-window 3 -epoch 10000]
//	substream -stat varopt -weighted -p 1 -input flows.txt
//	substream -list-estimators
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"substream/internal/core"
	"substream/internal/estimator"
	"substream/internal/obs"
	"substream/internal/pipeline"
	_ "substream/internal/quantile"
	"substream/internal/rng"
	_ "substream/internal/sample"
	"substream/internal/stream"
	"substream/internal/window"
)

// options carries every CLI flag; tests drive run with a literal.
type options struct {
	stat       string
	p          float64
	input      string
	k          int
	alpha      float64
	eps        float64
	seed       uint64
	exact      bool
	budget     int
	shards     int
	batch      int
	window     int
	epoch      int
	weighted   bool
	list       bool
	cpuprofile string
	memprofile string
	logLevel   string
	logFormat  string
}

func main() {
	var opt options
	flag.StringVar(&opt.stat, "stat", "f2", "statistic: any registered estimator kind (see -list-estimators)")
	flag.Float64Var(&opt.p, "p", 0.1, "Bernoulli sampling probability")
	flag.StringVar(&opt.input, "input", "", "input stream file (default stdin)")
	flag.IntVar(&opt.k, "k", 2, "moment order for -stat fk")
	flag.Float64Var(&opt.alpha, "alpha", 0.05, "heaviness threshold for hh1/hh2")
	flag.Float64Var(&opt.eps, "eps", 0.2, "target relative error")
	flag.Uint64Var(&opt.seed, "seed", 1, "random seed")
	flag.BoolVar(&opt.exact, "exact-collisions", false, "use the exact collision backend for fk")
	flag.IntVar(&opt.budget, "budget", 4096, "level-set budget for fk")
	flag.IntVar(&opt.shards, "shards", 1, "pipeline shard workers (1 = sequential)")
	flag.IntVar(&opt.batch, "batch", 1024, "pipeline batch size")
	flag.IntVar(&opt.window, "window", 0, "window span in epochs (0 = cumulative only)")
	flag.IntVar(&opt.epoch, "epoch", 10000, "items per epoch for -window")
	flag.BoolVar(&opt.weighted, "weighted", false, "read the weighted text format (\"key weight\" per line)")
	flag.BoolVar(&opt.list, "list-estimators", false, "list registered estimator kinds and exit")
	flag.StringVar(&opt.cpuprofile, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&opt.memprofile, "memprofile", "", "write a heap profile at the end of the run to this file")
	flag.StringVar(&opt.logLevel, "log-level", "info", "log verbosity: debug | info | warn | error (debug traces run phases)")
	flag.StringVar(&opt.logFormat, "log-format", "text", "log encoding: text | json")
	flag.Parse()

	if err := run(os.Stdout, opt); err != nil {
		fmt.Fprintln(os.Stderr, "substream:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, opt options) error {
	if opt.list {
		estimator.WriteKinds(w)
		return nil
	}
	// Diagnostics go to stderr as structured logs; stdout stays the
	// machine-readable estimate report.
	logger, err := obs.NewLogger(opt.logLevel, opt.logFormat, os.Stderr)
	if err != nil {
		return err
	}
	// Profiling hooks so perf work can attach pprof evidence without
	// patching the binary: the CPU profile covers the whole ingest run,
	// the heap profile snapshots live memory after it.
	if opt.cpuprofile != "" {
		f, err := os.Create(opt.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if opt.memprofile != "" {
		defer func() {
			f, err := os.Create(opt.memprofile)
			if err != nil {
				logger.Warn("memprofile", "err", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				logger.Warn("memprofile", "err", err)
			}
		}()
	}
	var in io.Reader = os.Stdin
	if opt.input != "" {
		f, err := os.Open(opt.input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	// Accept "f3" etc. as shorthand for -stat fk -k 3.
	if len(opt.stat) == 2 && opt.stat[0] == 'f' && opt.stat[1] >= '2' && opt.stat[1] <= '9' {
		opt.k = int(opt.stat[1] - '0')
		opt.stat = "fk"
	}

	// -weighted parses the "key weight" format into a weighted slice and
	// keeps a bare-key view of it for exact-statistics reporting; the
	// unweighted path is untouched.
	readStart := time.Now()
	var s stream.Slice
	var ws stream.WSlice
	if opt.weighted {
		ws, err = stream.ReadWeightedText(in)
		if err != nil {
			return err
		}
		s = make(stream.Slice, len(ws))
		for i := range ws {
			s[i] = ws[i].Key
		}
	} else {
		s, err = stream.ReadText(in)
		if err != nil {
			return err
		}
	}
	logger.Debug("stream loaded", "items", len(s), "elapsed", time.Since(readStart))
	if len(s) == 0 {
		return fmt.Errorf("empty input stream")
	}
	if opt.p <= 0 || opt.p > 1 {
		return fmt.Errorf("p must be in (0, 1], got %v", opt.p)
	}
	if opt.shards < 1 || opt.batch < 1 {
		return fmt.Errorf("shards and batch must be >= 1, got %d and %d", opt.shards, opt.batch)
	}
	if opt.window < 0 || opt.window > window.MaxWindow {
		return fmt.Errorf("window must be in [0, %d], got %d", window.MaxWindow, opt.window)
	}
	if opt.window > 0 && opt.epoch < 1 {
		return fmt.Errorf("epoch must be >= 1 item, got %d", opt.epoch)
	}

	r := rng.New(opt.seed)
	// Every estimator replica is constructed from this one spec (seed
	// included); identical construction state is what makes the replicas
	// mergeable.
	spec := estimator.Spec{
		Stat: opt.stat, P: opt.p, K: opt.k, Epsilon: opt.eps,
		Alpha: opt.alpha, Budget: opt.budget, Exact: opt.exact,
		Seed: r.Uint64(),
	}
	if _, err := estimator.New(spec); err != nil {
		return err
	}
	f := stream.NewFreq(s)
	fmt.Fprintf(w, "original stream: n=%d distinct=%d\n", len(s), f.F0())
	if opt.weighted {
		var totalW float64
		for i := range ws {
			totalW += ws[i].Weight
		}
		fmt.Fprintf(w, "weighted: total weight %.6g\n", totalW)
	}

	// With -window the replicas are epoch rings sharing one manual clock
	// the feed loop advances every -epoch items — count-driven epochs,
	// the batch-replay twin of the daemon's wall-clock ones.
	newInner := func() (estimator.Estimator, error) { return estimator.New(spec) }
	newReplica := newInner
	var clock *window.ManualClock
	if opt.window > 0 {
		clock = window.NewManualClock()
		newReplica = func() (estimator.Estimator, error) {
			return window.Wrap(window.Config{
				Window:   opt.window,
				EpochLen: time.Duration(opt.epoch),
				Clock:    clock,
				New:      newInner,
			})
		}
		if _, err := newReplica(); err != nil {
			return err
		}
	}

	// Both shard counts Bernoulli-sample at opt.p inside the pipeline
	// workers, so -shards 1 reproduces the classic sequential monitor and
	// -shards N merely spreads the same work across cores.
	pl := pipeline.New(pipeline.Config{
		Shards:    opt.shards,
		BatchSize: opt.batch,
		SampleP:   opt.p,
		Seed:      r.Uint64(),
	}, func(int) estimator.Estimator {
		e, err := newReplica()
		if err != nil {
			panic(err) // unreachable: spec probe-constructed above
		}
		return e
	})
	feedStart := time.Now()
	feed := func(lo, hi int) {
		if opt.weighted {
			pl.FeedWeightedSlice(ws[lo:hi])
		} else {
			pl.FeedSlice(s[lo:hi])
		}
	}
	if clock == nil {
		feed(0, len(s))
	} else {
		for start := 0; start < len(s); start += opt.epoch {
			// Quiesce before each boundary so every queued batch lands in
			// its own epoch, then rotate and feed the next slice.
			pl.Sync()
			clock.Set(uint64(start / opt.epoch))
			feed(start, min(start+opt.epoch, len(s)))
		}
	}
	merged, err := pipeline.MergeAll(pl)
	if err != nil {
		return err
	}
	logger.Debug("ingest complete",
		"fed", len(s), "kept", pl.Kept(), "shards", opt.shards,
		"elapsed", time.Since(feedStart))
	fmt.Fprintf(w, "sampled |L|=%d (p=%g, shards=%d, batch=%d)\n",
		pl.Kept(), opt.p, opt.shards, opt.batch)
	if clock != nil {
		fmt.Fprintf(w, "windowed: last %d epochs of %d items each (final epoch %d); window_* rows below\n",
			opt.window, opt.epoch, clock.Epoch())
	}

	// The paper's headline kinds report estimate vs exact with their
	// analytic bounds; any other registered kind prints its named
	// estimates — new kinds need no CLI change to be usable.
	switch e := estimator.Unwrap(merged).(type) {
	case *core.F0Estimator:
		report(w, "F0", e.Estimate(), float64(f.F0()))
		fmt.Fprintf(w, "guaranteed multiplicative bound: %.2f (Lemma 8)\n", e.ErrorBound())
	case *core.FkEstimator:
		report(w, fmt.Sprintf("F%d", opt.k), e.Estimate(), f.Fk(opt.k))
		fmt.Fprintf(w, "minimum meaningful p (Thm 1): %.4g\n",
			core.MinSamplingP(uint64(f.F0()), uint64(len(s)), opt.k))
	case *core.EntropyEstimator:
		report(w, "H", e.Estimate(), f.Entropy())
		fmt.Fprintf(w, "additive floor (Thm 5): %.4g bits\n", e.AdditiveFloor(uint64(len(s))))
	case *core.F1HeavyHitters:
		printHitters(w, e.Report(), f)
	case *core.F2HeavyHitters:
		printHitters(w, e.Report(), f)
	case *core.Monitor:
		rep := e.Report()
		report(w, "n", rep.EstimatedLength, float64(len(s)))
		report(w, fmt.Sprintf("F%d", max(opt.k, 2)), rep.Fk, f.Fk(max(opt.k, 2)))
		report(w, "F0", rep.F0, float64(f.F0()))
		report(w, "H", rep.Entropy, f.Entropy())
		fmt.Fprintf(w, "F1 heavy hitters:\n")
		printHitters(w, rep.F1HeavyHitters, f)
	default:
		printEstimates(w, merged)
	}
	return nil
}

// printEstimates renders a registry kind's named estimates in sorted
// order.
func printEstimates(w io.Writer, e estimator.Estimator) {
	vals := e.Estimates()
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s estimate: %.6g\n", name, vals[name])
	}
}

func report(w io.Writer, name string, est, exact float64) {
	rel := 0.0
	if exact != 0 {
		rel = (est - exact) / exact
	}
	fmt.Fprintf(w, "%s estimate: %.6g   exact: %.6g   relative error: %+.2f%%\n",
		name, est, exact, 100*rel)
}

func printHitters(w io.Writer, hh []core.ReportedHitter, f stream.Freq) {
	if len(hh) == 0 {
		fmt.Fprintln(w, "no heavy hitters detected")
		return
	}
	fmt.Fprintf(w, "%-12s %-14s %-10s\n", "item", "est freq", "true freq")
	for _, h := range hh {
		fmt.Fprintf(w, "%-12d %-14.1f %-10d\n", h.Item, h.Freq, f[h.Item])
	}
}
