// Command substream runs the paper's estimators over a stream. It reads
// the ORIGINAL stream (file or stdin, one decimal item per line),
// Bernoulli-samples it at rate -p exactly as a sampled-NetFlow monitor
// would, feeds only the sampled stream to the chosen estimator, and
// prints estimate vs exact.
//
// Usage:
//
//	substream -stat f2 -p 0.1 [-input stream.txt] [-k 3] [-alpha 0.05]
//
// Stats: f0, fk (with -k), entropy, hh1, hh2.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"substream/internal/core"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
)

func main() {
	var (
		statName = flag.String("stat", "f2", "statistic: f0 | fk | entropy | hh1 | hh2")
		p        = flag.Float64("p", 0.1, "Bernoulli sampling probability")
		input    = flag.String("input", "", "input stream file (default stdin)")
		k        = flag.Int("k", 2, "moment order for -stat fk")
		alpha    = flag.Float64("alpha", 0.05, "heaviness threshold for hh1/hh2")
		eps      = flag.Float64("eps", 0.2, "target relative error")
		seed     = flag.Uint64("seed", 1, "random seed")
		exact    = flag.Bool("exact-collisions", false, "use the exact collision backend for fk")
		budget   = flag.Int("budget", 4096, "level-set budget for fk")
	)
	flag.Parse()

	if err := run(os.Stdout, *statName, *p, *input, *k, *alpha, *eps, *seed, *exact, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "substream:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, statName string, p float64, input string, k int, alpha, eps float64, seed uint64, exact bool, budget int) error {
	var in io.Reader = os.Stdin
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	// Accept "f3" etc. as shorthand for -stat fk -k 3.
	if len(statName) == 2 && statName[0] == 'f' && statName[1] >= '2' && statName[1] <= '9' {
		k = int(statName[1] - '0')
		statName = "fk"
	}

	s, err := stream.ReadText(in)
	if err != nil {
		return err
	}
	if len(s) == 0 {
		return fmt.Errorf("empty input stream")
	}
	if p <= 0 || p > 1 {
		return fmt.Errorf("p must be in (0, 1], got %v", p)
	}

	r := rng.New(seed)
	f := stream.NewFreq(s)
	L := sample.NewBernoulli(p).Apply(s, r.Split())
	fmt.Fprintf(w, "original stream: n=%d distinct=%d; sampled |L|=%d (p=%g)\n",
		len(s), f.F0(), len(L), p)

	switch statName {
	case "f0":
		e := core.NewF0Estimator(core.F0Config{P: p}, r.Split())
		for _, it := range L {
			e.Observe(it)
		}
		report(w, "F0", e.Estimate(), float64(f.F0()))
		fmt.Fprintf(w, "guaranteed multiplicative bound: %.2f (Lemma 8)\n", e.ErrorBound())
	case "fk":
		e := core.NewFkEstimator(core.FkConfig{K: k, P: p, Epsilon: eps, Exact: exact, Budget: budget}, r.Split())
		for _, it := range L {
			e.Observe(it)
		}
		report(w, fmt.Sprintf("F%d", k), e.Estimate(), f.Fk(k))
		fmt.Fprintf(w, "minimum meaningful p (Thm 1): %.4g\n",
			core.MinSamplingP(uint64(f.F0()), uint64(len(s)), k))
	case "entropy":
		e := core.NewEntropyEstimator(core.EntropyConfig{P: p}, r.Split())
		for _, it := range L {
			e.Observe(it)
		}
		report(w, "H", e.Estimate(), f.Entropy())
		fmt.Fprintf(w, "additive floor (Thm 5): %.4g bits\n", e.AdditiveFloor(uint64(len(s))))
	case "hh1":
		e := core.NewF1HeavyHitters(core.F1HHConfig{P: p, Alpha: alpha, Epsilon: eps}, r.Split())
		for _, it := range L {
			e.Observe(it)
		}
		printHitters(w, e.Report(), f)
	case "hh2":
		e := core.NewF2HeavyHitters(core.F2HHConfig{P: p, Alpha: alpha, Epsilon: eps}, r.Split())
		for _, it := range L {
			e.Observe(it)
		}
		printHitters(w, e.Report(), f)
	default:
		return fmt.Errorf("unknown stat %q (want f0 | fk | entropy | hh1 | hh2)", statName)
	}
	return nil
}

func report(w io.Writer, name string, est, exact float64) {
	rel := 0.0
	if exact != 0 {
		rel = (est - exact) / exact
	}
	fmt.Fprintf(w, "%s estimate: %.6g   exact: %.6g   relative error: %+.2f%%\n",
		name, est, exact, 100*rel)
}

func printHitters(w io.Writer, hh []core.ReportedHitter, f stream.Freq) {
	if len(hh) == 0 {
		fmt.Fprintln(w, "no heavy hitters detected")
		return
	}
	fmt.Fprintf(w, "%-12s %-14s %-10s\n", "item", "est freq", "true freq")
	for _, h := range hh {
		fmt.Fprintf(w, "%-12d %-14.1f %-10d\n", h.Item, h.Freq, f[h.Item])
	}
}
