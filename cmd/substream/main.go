// Command substream runs the paper's estimators over a stream. It reads
// the ORIGINAL stream (file or stdin, one decimal item per line),
// Bernoulli-samples it at rate -p exactly as a sampled-NetFlow monitor
// would, feeds only the sampled stream to the chosen estimator, and
// prints estimate vs exact.
//
// With -shards N > 1 the stream is ingested through the sharded pipeline
// (internal/pipeline): batches of -batch items are dealt round-robin to N
// workers, each worker samples and feeds its own estimator replica, and
// the replicas are merged into one estimate — the single-machine version
// of the distributed-monitor deployment.
//
// Usage:
//
//	substream -stat f2 -p 0.1 [-input stream.txt] [-k 3] [-alpha 0.05]
//	          [-shards 4] [-batch 1024]
//
// Stats: f0, fk (with -k), entropy, hh1, hh2, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"substream/internal/core"
	"substream/internal/pipeline"
	"substream/internal/rng"
	"substream/internal/stream"
)

// options carries every CLI flag; tests drive run with a literal.
type options struct {
	stat   string
	p      float64
	input  string
	k      int
	alpha  float64
	eps    float64
	seed   uint64
	exact  bool
	budget int
	shards int
	batch  int
}

func main() {
	var opt options
	flag.StringVar(&opt.stat, "stat", "f2", "statistic: f0 | fk | entropy | hh1 | hh2 | all")
	flag.Float64Var(&opt.p, "p", 0.1, "Bernoulli sampling probability")
	flag.StringVar(&opt.input, "input", "", "input stream file (default stdin)")
	flag.IntVar(&opt.k, "k", 2, "moment order for -stat fk")
	flag.Float64Var(&opt.alpha, "alpha", 0.05, "heaviness threshold for hh1/hh2")
	flag.Float64Var(&opt.eps, "eps", 0.2, "target relative error")
	flag.Uint64Var(&opt.seed, "seed", 1, "random seed")
	flag.BoolVar(&opt.exact, "exact-collisions", false, "use the exact collision backend for fk")
	flag.IntVar(&opt.budget, "budget", 4096, "level-set budget for fk")
	flag.IntVar(&opt.shards, "shards", 1, "pipeline shard workers (1 = sequential)")
	flag.IntVar(&opt.batch, "batch", 1024, "pipeline batch size")
	flag.Parse()

	if err := run(os.Stdout, opt); err != nil {
		fmt.Fprintln(os.Stderr, "substream:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, opt options) error {
	var in io.Reader = os.Stdin
	if opt.input != "" {
		f, err := os.Open(opt.input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	// Accept "f3" etc. as shorthand for -stat fk -k 3.
	if len(opt.stat) == 2 && opt.stat[0] == 'f' && opt.stat[1] >= '2' && opt.stat[1] <= '9' {
		opt.k = int(opt.stat[1] - '0')
		opt.stat = "fk"
	}

	s, err := stream.ReadText(in)
	if err != nil {
		return err
	}
	if len(s) == 0 {
		return fmt.Errorf("empty input stream")
	}
	if opt.p <= 0 || opt.p > 1 {
		return fmt.Errorf("p must be in (0, 1], got %v", opt.p)
	}
	if opt.shards < 1 || opt.batch < 1 {
		return fmt.Errorf("shards and batch must be >= 1, got %d and %d", opt.shards, opt.batch)
	}

	r := rng.New(opt.seed)
	// Every estimator replica is constructed from this one seed; identical
	// construction state is what makes the replicas mergeable.
	estSeed := r.Uint64()
	f := stream.NewFreq(s)
	fmt.Fprintf(w, "original stream: n=%d distinct=%d\n", len(s), f.F0())

	switch opt.stat {
	case "f0":
		e, err := estimate(w, opt, s, r, func(int) *core.F0Estimator {
			return core.NewF0Estimator(core.F0Config{P: opt.p}, rng.New(estSeed))
		})
		if err != nil {
			return err
		}
		report(w, "F0", e.Estimate(), float64(f.F0()))
		fmt.Fprintf(w, "guaranteed multiplicative bound: %.2f (Lemma 8)\n", e.ErrorBound())
	case "fk":
		e, err := estimate(w, opt, s, r, func(int) *core.FkEstimator {
			return core.NewFkEstimator(core.FkConfig{
				K: opt.k, P: opt.p, Epsilon: opt.eps, Exact: opt.exact, Budget: opt.budget,
			}, rng.New(estSeed))
		})
		if err != nil {
			return err
		}
		report(w, fmt.Sprintf("F%d", opt.k), e.Estimate(), f.Fk(opt.k))
		fmt.Fprintf(w, "minimum meaningful p (Thm 1): %.4g\n",
			core.MinSamplingP(uint64(f.F0()), uint64(len(s)), opt.k))
	case "entropy":
		e, err := estimate(w, opt, s, r, func(int) *core.EntropyEstimator {
			return core.NewEntropyEstimator(core.EntropyConfig{P: opt.p}, rng.New(estSeed))
		})
		if err != nil {
			return err
		}
		report(w, "H", e.Estimate(), f.Entropy())
		fmt.Fprintf(w, "additive floor (Thm 5): %.4g bits\n", e.AdditiveFloor(uint64(len(s))))
	case "hh1":
		e, err := estimate(w, opt, s, r, func(int) *core.F1HeavyHitters {
			return core.NewF1HeavyHitters(core.F1HHConfig{
				P: opt.p, Alpha: opt.alpha, Epsilon: opt.eps,
			}, rng.New(estSeed))
		})
		if err != nil {
			return err
		}
		printHitters(w, e.Report(), f)
	case "hh2":
		e, err := estimate(w, opt, s, r, func(int) *core.F2HeavyHitters {
			return core.NewF2HeavyHitters(core.F2HHConfig{
				P: opt.p, Alpha: opt.alpha, Epsilon: opt.eps,
			}, rng.New(estSeed))
		})
		if err != nil {
			return err
		}
		printHitters(w, e.Report(), f)
	case "all":
		m, err := estimate(w, opt, s, r, func(int) *core.Monitor {
			return core.NewMonitor(core.MonitorConfig{
				P: opt.p, K: opt.k, Epsilon: opt.eps, HHAlpha: opt.alpha,
			}, rng.New(estSeed))
		})
		if err != nil {
			return err
		}
		rep := m.Report()
		report(w, "n", rep.EstimatedLength, float64(len(s)))
		report(w, fmt.Sprintf("F%d", max(opt.k, 2)), rep.Fk, f.Fk(max(opt.k, 2)))
		report(w, "F0", rep.F0, float64(f.F0()))
		report(w, "H", rep.Entropy, f.Entropy())
		fmt.Fprintf(w, "F1 heavy hitters:\n")
		printHitters(w, rep.F1HeavyHitters, f)
	default:
		return fmt.Errorf("unknown stat %q (want f0 | fk | entropy | hh1 | hh2 | all)", opt.stat)
	}
	return nil
}

// estimate feeds the original stream to identically-seeded estimator
// replicas and returns the (merged) estimator. Both paths Bernoulli-
// sample at opt.p inside the pipeline workers, so -shards 1 reproduces
// the classic sequential monitor and -shards N merely spreads the same
// work across cores.
func estimate[E pipeline.Mergeable[E]](w io.Writer, opt options, s stream.Slice, r *rng.Xoshiro256, mk func(int) E) (E, error) {
	pl := pipeline.New(pipeline.Config{
		Shards:    opt.shards,
		BatchSize: opt.batch,
		SampleP:   opt.p,
		Seed:      r.Uint64(),
	}, mk)
	pl.FeedSlice(s)
	e, err := pipeline.MergeAll(pl)
	if err != nil {
		return e, err
	}
	fmt.Fprintf(w, "sampled |L|=%d (p=%g, shards=%d, batch=%d)\n",
		pl.Kept(), opt.p, opt.shards, opt.batch)
	return e, nil
}

func report(w io.Writer, name string, est, exact float64) {
	rel := 0.0
	if exact != 0 {
		rel = (est - exact) / exact
	}
	fmt.Fprintf(w, "%s estimate: %.6g   exact: %.6g   relative error: %+.2f%%\n",
		name, est, exact, 100*rel)
}

func printHitters(w io.Writer, hh []core.ReportedHitter, f stream.Freq) {
	if len(hh) == 0 {
		fmt.Fprintln(w, "no heavy hitters detected")
		return
	}
	fmt.Fprintf(w, "%-12s %-14s %-10s\n", "item", "est freq", "true freq")
	for _, h := range hh {
		fmt.Fprintf(w, "%-12d %-14.1f %-10d\n", h.Item, h.Freq, f[h.Item])
	}
}
