package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"substream/internal/stream"
	"substream/internal/workload"
)

// writeStreamFile materializes a workload to a temp file in the CLI's
// text format.
func writeStreamFile(t *testing.T, wl workload.Workload) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := stream.WriteText(f, wl.Stream); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllStats(t *testing.T) {
	path := writeStreamFile(t, workload.Zipf(20000, 500, 1.1, 1))
	for _, stat := range []string{"f0", "fk", "entropy", "hh1", "hh2", "f3"} {
		var out bytes.Buffer
		if err := run(&out, stat, 0.3, path, 2, 0.05, 0.2, 1, true, 1024); err != nil {
			t.Fatalf("stat %s: %v", stat, err)
		}
		got := out.String()
		if !strings.Contains(got, "original stream: n=20000") {
			t.Fatalf("stat %s missing header:\n%s", stat, got)
		}
		switch stat {
		case "f0":
			if !strings.Contains(got, "Lemma 8") {
				t.Fatalf("f0 missing bound:\n%s", got)
			}
		case "fk":
			if !strings.Contains(got, "F2 estimate") {
				t.Fatalf("fk output:\n%s", got)
			}
		case "f3":
			if !strings.Contains(got, "F3 estimate") {
				t.Fatalf("f3 shorthand not honoured:\n%s", got)
			}
		case "entropy":
			if !strings.Contains(got, "additive floor") {
				t.Fatalf("entropy output:\n%s", got)
			}
		case "hh1", "hh2":
			if !strings.Contains(got, "est freq") && !strings.Contains(got, "no heavy hitters") {
				t.Fatalf("%s output:\n%s", stat, got)
			}
		}
	}
}

func TestRunHH1FindsPlantedHitters(t *testing.T) {
	path := writeStreamFile(t, workload.PlantedHH(50000, 3, 5000, 10000, 2))
	var out bytes.Buffer
	if err := run(&out, "hh1", 0.3, path, 2, 0.05, 0.2, 1, false, 1024); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, id := range []string{"1 ", "2 ", "3 "} {
		if !strings.Contains(got, id) {
			t.Fatalf("planted hitter %q missing:\n%s", id, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeStreamFile(t, workload.Zipf(1000, 50, 1.0, 3))
	cases := []struct {
		name string
		fn   func() error
	}{
		{"unknown stat", func() error {
			return run(new(bytes.Buffer), "nope", 0.5, path, 2, 0.05, 0.2, 1, false, 64)
		}},
		{"bad p", func() error {
			return run(new(bytes.Buffer), "f0", 1.5, path, 2, 0.05, 0.2, 1, false, 64)
		}},
		{"missing file", func() error {
			return run(new(bytes.Buffer), "f0", 0.5, path+".nope", 2, 0.05, 0.2, 1, false, 64)
		}},
	}
	for _, c := range cases {
		if err := c.fn(); err == nil {
			t.Fatalf("%s: no error", c.name)
		}
	}
}

func TestRunEmptyStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(new(bytes.Buffer), "f0", 0.5, path, 2, 0.05, 0.2, 1, false, 64); err == nil {
		t.Fatal("empty stream accepted")
	}
}
