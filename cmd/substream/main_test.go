package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"substream/internal/stream"
	"substream/internal/workload"
)

// writeStreamFile materializes a workload to a temp file in the CLI's
// text format.
func writeStreamFile(t *testing.T, wl workload.Workload) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := stream.WriteText(f, wl.Stream); err != nil {
		t.Fatal(err)
	}
	return path
}

// baseOpts returns the flag defaults the tests tweak per case.
func baseOpts(stat, path string) options {
	return options{
		stat: stat, p: 0.3, input: path, k: 2, alpha: 0.05, eps: 0.2,
		seed: 1, budget: 1024, shards: 1, batch: 1024,
	}
}

func TestRunAllStats(t *testing.T) {
	path := writeStreamFile(t, workload.Zipf(20000, 500, 1.1, 1))
	for _, stat := range []string{"f0", "fk", "entropy", "hh1", "hh2", "f3", "all"} {
		var out bytes.Buffer
		opt := baseOpts(stat, path)
		opt.exact = true
		if err := run(&out, opt); err != nil {
			t.Fatalf("stat %s: %v", stat, err)
		}
		got := out.String()
		if !strings.Contains(got, "original stream: n=20000") {
			t.Fatalf("stat %s missing header:\n%s", stat, got)
		}
		switch stat {
		case "f0":
			if !strings.Contains(got, "Lemma 8") {
				t.Fatalf("f0 missing bound:\n%s", got)
			}
		case "fk":
			if !strings.Contains(got, "F2 estimate") {
				t.Fatalf("fk output:\n%s", got)
			}
		case "f3":
			if !strings.Contains(got, "F3 estimate") {
				t.Fatalf("f3 shorthand not honoured:\n%s", got)
			}
		case "entropy":
			if !strings.Contains(got, "additive floor") {
				t.Fatalf("entropy output:\n%s", got)
			}
		case "hh1", "hh2":
			if !strings.Contains(got, "est freq") && !strings.Contains(got, "no heavy hitters") {
				t.Fatalf("%s output:\n%s", stat, got)
			}
		case "all":
			for _, want := range []string{"F0 estimate", "H estimate", "heavy hitters"} {
				if !strings.Contains(got, want) {
					t.Fatalf("all output missing %q:\n%s", want, got)
				}
			}
		}
	}
}

// TestRunSharded drives every stat through the -shards path and checks
// the sharded pipeline output matches the sequential shape.
func TestRunSharded(t *testing.T) {
	path := writeStreamFile(t, workload.Zipf(20000, 500, 1.1, 1))
	for _, stat := range []string{"f0", "fk", "entropy", "hh1", "hh2", "all"} {
		var out bytes.Buffer
		opt := baseOpts(stat, path)
		opt.exact = true
		opt.shards = 4
		opt.batch = 256
		if err := run(&out, opt); err != nil {
			t.Fatalf("stat %s sharded: %v", stat, err)
		}
		got := out.String()
		if !strings.Contains(got, "shards=4") {
			t.Fatalf("stat %s missing shard report:\n%s", stat, got)
		}
		if !strings.Contains(got, "estimate") && !strings.Contains(got, "est freq") &&
			!strings.Contains(got, "no heavy hitters") {
			t.Fatalf("stat %s sharded output:\n%s", stat, got)
		}
	}
}

func TestRunHH1FindsPlantedHitters(t *testing.T) {
	path := writeStreamFile(t, workload.PlantedHH(50000, 3, 5000, 10000, 2))
	for _, shards := range []int{1, 4} {
		var out bytes.Buffer
		opt := baseOpts("hh1", path)
		opt.shards = shards
		if err := run(&out, opt); err != nil {
			t.Fatal(err)
		}
		got := out.String()
		for _, id := range []string{"1 ", "2 ", "3 "} {
			if !strings.Contains(got, id) {
				t.Fatalf("shards=%d: planted hitter %q missing:\n%s", shards, id, got)
			}
		}
	}
}

// TestRunWindowed drives the epoch-ring path: the output must carry the
// windowed header plus both cumulative and window_-prefixed estimates,
// sequentially and sharded.
func TestRunWindowed(t *testing.T) {
	path := writeStreamFile(t, workload.Zipf(20000, 500, 1.1, 1))
	for _, shards := range []int{1, 4} {
		var out bytes.Buffer
		opt := baseOpts("f0", path)
		opt.shards = shards
		opt.window = 2
		opt.epoch = 5000
		if err := run(&out, opt); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got := out.String()
		for _, want := range []string{"windowed: last 2 epochs", "final epoch 3", "window_f0 estimate", "f0 estimate"} {
			if !strings.Contains(got, want) {
				t.Fatalf("shards=%d: windowed output missing %q:\n%s", shards, want, got)
			}
		}
	}
}

// TestRunWeighted drives -weighted through the varopt reservoir. The
// reservoir's total_weight scalar sums every fed weight exactly, so with
// p=1 it must reproduce the file's total — sequentially, sharded, and
// windowed.
func TestRunWeighted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flows.txt")
	ws := make(stream.WSlice, 0, 5000)
	var total float64
	for i := 1; i <= 5000; i++ {
		wt := 1 + float64(i%7)
		ws = append(ws, stream.WItem{Key: stream.Item(i%97 + 1), Weight: wt})
		total += wt
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.WriteWeightedText(f, ws); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// printEstimates renders scalars with %.6g; derive the expected row
	// from the exact total the same way.
	wantRow := fmt.Sprintf("total_weight estimate: %.6g", total)
	for _, shards := range []int{1, 4} {
		var out bytes.Buffer
		opt := baseOpts("varopt", path)
		opt.p = 1
		opt.weighted = true
		opt.shards = shards
		if err := run(&out, opt); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got := out.String()
		for _, want := range []string{"weighted: total weight", wantRow} {
			if !strings.Contains(got, want) {
				t.Fatalf("shards=%d: weighted output missing %q:\n%s", shards, want, got)
			}
		}
	}
	// Windowed: the window_* rows must appear alongside the cumulative
	// ones, and the cumulative total stays exact.
	var out bytes.Buffer
	opt := baseOpts("varopt", path)
	opt.p = 1
	opt.weighted = true
	opt.window = 2
	opt.epoch = 2000
	if err := run(&out, opt); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"window_total_weight estimate", wantRow} {
		if !strings.Contains(got, want) {
			t.Fatalf("windowed weighted output missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeStreamFile(t, workload.Zipf(1000, 50, 1.0, 3))
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"unknown stat", func(o *options) { o.stat = "nope" }},
		{"bad p", func(o *options) { o.p = 1.5 }},
		{"missing file", func(o *options) { o.input = path + ".nope" }},
		{"bad shards", func(o *options) { o.shards = 0 }},
		{"bad batch", func(o *options) { o.batch = -1 }},
		{"bad window", func(o *options) { o.window = -1 }},
		{"bad epoch", func(o *options) { o.window = 2; o.epoch = 0 }},
	}
	for _, c := range cases {
		opt := baseOpts("f0", path)
		c.mut(&opt)
		if err := run(new(bytes.Buffer), opt); err == nil {
			t.Fatalf("%s: no error", c.name)
		}
	}
}

func TestRunEmptyStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(new(bytes.Buffer), baseOpts("f0", path)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// TestRunWritesProfiles checks the pprof hooks: a run with -cpuprofile
// and -memprofile must leave non-empty, parseable profile files behind.
func TestRunWritesProfiles(t *testing.T) {
	path := writeStreamFile(t, workload.Zipf(20_000, 1024, 1.2, 5))
	dir := t.TempDir()
	opt := baseOpts("f0", path)
	opt.cpuprofile = filepath.Join(dir, "cpu.pprof")
	opt.memprofile = filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	if err := run(&out, opt); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{opt.cpuprofile, opt.memprofile} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	if !strings.Contains(out.String(), "F0 estimate") {
		t.Fatalf("profiled run lost its output: %q", out.String())
	}
}

func TestListEstimators(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, options{list: true}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"fk", "0x20", "f0", "hh2", "levelset", "countmin", "window", "0x30", "quantile", "0x40", "varopt", "0x50"} {
		if !strings.Contains(got, want) {
			t.Fatalf("-list-estimators output missing %q:\n%s", want, got)
		}
	}
	// Decode-only kinds are marked so operators know they cannot back a
	// -stat flag or stream config; quantile is constructible and must
	// carry the stat MODE.
	quantileRow := false
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "topk") || strings.HasPrefix(line, "window") {
			if !strings.Contains(line, "decode-only") {
				t.Fatalf("decode-only kind unmarked: %q", line)
			}
		}
		if strings.HasPrefix(line, "quantile") {
			quantileRow = true
			if !strings.Contains(line, "stat") || strings.Contains(line, "decode-only") {
				t.Fatalf("quantile row not marked as a stat kind: %q", line)
			}
		}
	}
	if !quantileRow {
		t.Fatal("no quantile row in -list-estimators output")
	}
}
