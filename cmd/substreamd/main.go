// Command substreamd is the network monitoring daemon: the paper's
// sampled-NetFlow topology as a long-running service (see
// internal/server).
//
// Agent mode owns named streams, ingests item batches over HTTP,
// Bernoulli-samples them in its sharded pipeline, and periodically ships
// its cumulative estimator state to the collector:
//
//	substreamd -role agent -listen :8080 -upstream http://collector:8081 \
//	           -id router-7 -flush 10s \
//	           -streams '{"flows": {"stat": "f0", "p": 0.05, "seed": 42}}'
//
// Collector mode accepts shipped summaries and serves the merged global
// estimate; -max-summary-age stops long-dead agents from haunting it:
//
//	substreamd -role collector -listen :8081 -max-summary-age 5m
//
// Both halves of the ship path tolerate faults: agents retry transient
// ship failures with capped jittered backoff (-ship-retries,
// -ship-backoff) behind a per-upstream circuit breaker
// (-breaker-threshold), and a collector given -snapshot-dir atomically
// checkpoints its retained summary table every -snapshot-interval and
// restores it on startup, so a restart forgets nothing. There is no
// replay queue: summaries are cumulative, so the next flush repairs any
// loss (see internal/server's "Fault tolerance" notes).
//
// The -streams flag takes either inline JSON ({"name": {config...}}) or
// a path to a JSON file of the same shape; stream configs may set
// "window"/"epoch" for epoch-ring windowed estimation, and the agent
// flags -window/-epoch apply fleet-wide defaults to streams that set
// none. Both roles serve /healthz and /metricsz and shut down gracefully
// on SIGINT/SIGTERM (agents perform a final flush first, bounded by
// -flush-timeout).
//
// Ingest accepts unweighted bodies (text/plain, application/octet-stream)
// and weighted ones (text/vnd.substream.weighted "key weight" lines,
// application/vnd.substream.witem 16-byte key+float64 records). Streams
// backed by a "varopt" stat answer Horvitz–Thompson subset sums over an
// IPv4 CIDR prefix of the key's low 32 bits: agents at
// GET /v1/streams/{name}/subsetsum?prefix=10.0.0.0/8[&scope=window],
// collectors fleet-wide at GET /v1/subsetsum?stream=...&prefix=...
// (see internal/server).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"substream/internal/estimator"
	"substream/internal/obs"
	"substream/internal/server"
)

// options carries every CLI flag; tests drive run with a literal (zero
// values mean the corresponding config defaults, same as omitting the
// flag — except the disable sentinels, which need the explicit
// negatives documented on each flag).
type options struct {
	role             string
	listen           string
	upstream         string
	id               string
	flush            time.Duration
	flushTimeout     time.Duration
	streams          string
	window           int
	epoch            time.Duration
	maxSummaryAge    time.Duration
	obsSample        int
	shipRetries      int
	shipBackoff      time.Duration
	breakerThreshold int
	snapshotDir      string
	snapshotInterval time.Duration
	logLevel         string
	logFormat        string
	list             bool
}

func main() {
	var opt options
	flag.StringVar(&opt.role, "role", "agent", "daemon role: agent | collector")
	flag.StringVar(&opt.listen, "listen", ":8080", "listen address")
	flag.StringVar(&opt.upstream, "upstream", "", "collector base URL (agent mode)")
	flag.StringVar(&opt.id, "id", "", "agent identity (default: hostname-pid)")
	flag.DurationVar(&opt.flush, "flush", 10*time.Second, "summary shipping interval (agent mode)")
	flag.DurationVar(&opt.flushTimeout, "flush-timeout", 5*time.Second, "bound on the final shutdown flush (agent mode)")
	flag.StringVar(&opt.streams, "streams", "", "stream registry: inline JSON or a JSON file path (agent mode)")
	flag.IntVar(&opt.window, "window", 0, "default window span in epochs for streams that set none (agent mode; 0 = cumulative only)")
	flag.DurationVar(&opt.epoch, "epoch", time.Minute, "default epoch duration for windowed streams that set none (agent mode)")
	flag.DurationVar(&opt.maxSummaryAge, "max-summary-age", 0, "exclude agents whose last summary is older from global estimates (collector mode; 0 = never)")
	flag.IntVar(&opt.obsSample, "obs-sample-every", 0, "sample ingest timing histograms one request in N; counters stay exact (agent mode; 0 = default 64, 1 = every request)")
	flag.IntVar(&opt.shipRetries, "ship-retries", 0, "retries per ship after a transient failure, with capped exponential backoff (agent mode; 0 = default 2, negative = no retries)")
	flag.DurationVar(&opt.shipBackoff, "ship-backoff", 0, "base ship retry backoff, doubled per attempt with jitter and capped at 16x (agent mode; 0 = default 100ms)")
	flag.IntVar(&opt.breakerThreshold, "breaker-threshold", 0, "consecutive ship failures that open the upstream circuit breaker (agent mode; 0 = default 5, negative = breaker disabled)")
	flag.StringVar(&opt.snapshotDir, "snapshot-dir", "", "directory for periodic atomic snapshots of the retained summary table, restored on startup (collector mode; empty = durability off)")
	flag.DurationVar(&opt.snapshotInterval, "snapshot-interval", 0, "interval between collector snapshots (collector mode; 0 = default 30s)")
	flag.StringVar(&opt.logLevel, "log-level", "info", "log verbosity: debug | info | warn | error (debug includes per-request lines)")
	flag.StringVar(&opt.logFormat, "log-format", "text", "log encoding: text | json")
	flag.BoolVar(&opt.list, "list-estimators", false, "list the estimator kinds streams may declare and exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "substreamd:", err)
		os.Exit(1)
	}
}

// applyWindowDefaults folds the -window/-epoch fleet defaults into the
// stream registry: -window supplies a span to streams that declare
// none, and -epoch supplies the epoch to any WINDOWED stream (own or
// inherited span) that declares none. Explicit per-stream values always
// win, so a fleet restart with different flags never changes a pinned
// stream's merge identity.
func applyWindowDefaults(streams map[string]server.StreamConfig, window int, epoch time.Duration) {
	for name, cfg := range streams {
		if cfg.Window == 0 && window > 0 {
			cfg.Window = window
		}
		if cfg.Window > 0 && cfg.Epoch == 0 && epoch > 0 {
			cfg.Epoch = server.Duration(epoch)
		}
		streams[name] = cfg
	}
}

// parseStreams reads the -streams spec: inline JSON or a file path.
func parseStreams(spec string) (map[string]server.StreamConfig, error) {
	if spec == "" {
		return nil, nil
	}
	raw := []byte(spec)
	if !strings.HasPrefix(strings.TrimSpace(spec), "{") {
		data, err := os.ReadFile(spec)
		if err != nil {
			return nil, fmt.Errorf("reading -streams file: %w", err)
		}
		raw = data
	}
	var out map[string]server.StreamConfig
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("parsing -streams: %w", err)
	}
	return out, nil
}

// newLogger builds the daemon's structured logger from the -log-level
// and -log-format flags. Logs go to stderr; stdout stays reserved for
// the startup address line scripts scrape. Empty values mean the flag
// defaults, so tests driving run with option literals need not set them.
func newLogger(opt options) (*slog.Logger, error) {
	return obs.NewLogger(opt.logLevel, opt.logFormat, os.Stderr)
}

// run starts the daemon and blocks until ctx is canceled, then shuts
// down gracefully. The bound address is printed to w so callers binding
// port 0 can find the server.
func run(ctx context.Context, opt options, w io.Writer) error {
	if opt.list {
		estimator.WriteKinds(w)
		return nil
	}
	logger, err := newLogger(opt)
	if err != nil {
		return err
	}
	switch opt.role {
	case "agent":
		return runAgent(ctx, opt, w, logger)
	case "collector":
		return runCollector(ctx, opt, w, logger)
	default:
		return fmt.Errorf("unknown role %q (want agent or collector)", opt.role)
	}
}

func runCollector(ctx context.Context, opt options, w io.Writer, logger *slog.Logger) error {
	collector := server.NewCollector(server.CollectorConfig{
		MaxSummaryAge:    opt.maxSummaryAge,
		SnapshotDir:      opt.snapshotDir,
		SnapshotInterval: opt.snapshotInterval,
		Logger:           logger,
	})
	srv, err := server.Start(opt.listen, collector.Handler())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "substreamd: collector listening on %s\n", srv.URL())

	// Run drives the periodic durability snapshots; on shutdown the HTTP
	// server drains first (no accept may race the final checkpoint), then
	// Run writes one last snapshot so a planned restart is lossless.
	collectorCtx, stopCollector := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- collector.Run(collectorCtx) }()

	<-ctx.Done()
	shutdownErr := shutdown(srv, w)
	stopCollector()
	runErr := <-runDone
	if shutdownErr != nil {
		return shutdownErr
	}
	return runErr
}

func runAgent(ctx context.Context, opt options, w io.Writer, logger *slog.Logger) error {
	id := opt.id
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "agent"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	streams, err := parseStreams(opt.streams)
	if err != nil {
		return err
	}
	applyWindowDefaults(streams, opt.window, opt.epoch)
	agent := server.NewAgent(server.AgentConfig{
		ID:                   id,
		Upstream:             opt.upstream,
		FlushInterval:        opt.flush,
		ShutdownFlushTimeout: opt.flushTimeout,
		ShipRetries:          opt.shipRetries,
		ShipBackoff:          opt.shipBackoff,
		BreakerThreshold:     opt.breakerThreshold,
		Logger:               logger,
		ObsSampleEvery:       opt.obsSample,
	})
	for name, cfg := range streams {
		if err := agent.CreateStream(name, cfg); err != nil {
			return fmt.Errorf("stream %q: %w", name, err)
		}
	}
	srv, err := server.Start(opt.listen, agent.Handler())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "substreamd: agent %s listening on %s (upstream %q, %d streams)\n",
		id, srv.URL(), opt.upstream, len(streams))

	// Run drives periodic shipping in the background; on shutdown the
	// HTTP server drains first (no ingest may race a closed pipeline),
	// then the agent performs its final flush and pipeline teardown.
	agentCtx, stopAgent := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- agent.Run(agentCtx) }()

	<-ctx.Done()
	shutdownErr := shutdown(srv, w)
	stopAgent()
	runErr := <-runDone
	if shutdownErr != nil {
		return shutdownErr
	}
	return runErr
}

func shutdown(srv *server.Server, w io.Writer) error {
	fmt.Fprintln(w, "substreamd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
