package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"substream/internal/server"
)

// syncBuffer is an io.Writer the daemon goroutine and the test can share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var urlRe = regexp.MustCompile(`http://[0-9.:]+`)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a stopper that performs the graceful shutdown and surfaces
// run's error.
func startDaemon(t *testing.T, opt options) (string, func() error) {
	t.Helper()
	opt.listen = "127.0.0.1:0"
	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, opt, &out) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if url := urlRe.FindString(out.String()); url != "" {
			return url, func() error {
				cancel()
				select {
				case err := <-errCh:
					return err
				case <-time.After(10 * time.Second):
					return context.DeadlineExceeded
				}
			}
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon did not announce its address; output: %q", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDaemonSmoke(t *testing.T) {
	// Collector up first.
	collectorURL, stopCollector := startDaemon(t, options{role: "collector"})

	// Agent with one preconfigured stream, shipping to the collector.
	agentURL, stopAgent := startDaemon(t, options{
		role:     "agent",
		id:       "smoke-agent",
		upstream: collectorURL,
		flush:    50 * time.Millisecond,
		streams:  `{"flows": {"stat": "f0", "p": 0.5, "seed": 7, "presampled": true, "shards": 2}}`,
	})

	// Health on both roles.
	for _, url := range []string{collectorURL, agentURL} {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz %s: status %d", url, resp.StatusCode)
		}
	}

	// Ingest a few items and wait for a periodic flush to reach the
	// collector.
	resp, err := http.Post(agentURL+"/v1/streams/flows/ingest", "text/plain",
		strings.NewReader("1\n2\n3\n2\n1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(collectorURL + "/v1/streams/flows/estimate")
		if err == nil && resp.StatusCode == http.StatusOK {
			var got struct {
				Estimates struct {
					Values map[string]float64 `json:"values"`
				} `json:"estimates"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if got.Estimates.Values["f0_sampled"] == 3 {
				break
			}
		} else if resp != nil {
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("collector never served the shipped estimate")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Graceful shutdown, agent first (it performs a final flush).
	if err := stopAgent(); err != nil {
		t.Fatalf("agent shutdown: %v", err)
	}
	if err := stopCollector(); err != nil {
		t.Fatalf("collector shutdown: %v", err)
	}
}

// TestDaemonSnapshotRestart is the -snapshot-dir contract end to end: a
// collector is shut down gracefully (writing its final checkpoint) and a
// fresh collector process pointed at the same directory serves the same
// global estimate immediately, before any agent reships.
func TestDaemonSnapshotRestart(t *testing.T) {
	dir := t.TempDir()
	collectorURL, stopCollector := startDaemon(t, options{
		role:             "collector",
		snapshotDir:      dir,
		snapshotInterval: time.Hour, // only the shutdown write matters here
	})
	agentURL, stopAgent := startDaemon(t, options{
		role:        "agent",
		id:          "snap-agent",
		upstream:    collectorURL,
		flush:       50 * time.Millisecond,
		shipRetries: 1,
		streams:     `{"flows": {"stat": "f0", "p": 0.5, "seed": 7, "presampled": true}}`,
	})

	resp, err := http.Post(agentURL+"/v1/streams/flows/ingest", "text/plain",
		strings.NewReader("1\n2\n3\n2\n1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	readEstimate := func(url string) (float64, bool) {
		resp, err := http.Get(url + "/v1/streams/flows/estimate")
		if err != nil || resp.StatusCode != http.StatusOK {
			if resp != nil {
				resp.Body.Close()
			}
			return 0, false
		}
		defer resp.Body.Close()
		var got struct {
			Estimates struct {
				Values map[string]float64 `json:"values"`
			} `json:"estimates"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		return got.Estimates.Values["f0_sampled"], true
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := readEstimate(collectorURL); ok && v == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("collector never served the shipped estimate")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Kill the fleet: the agent first (its state is now upstream), then
	// the collector, whose graceful shutdown checkpoints the table.
	if err := stopAgent(); err != nil {
		t.Fatalf("agent shutdown: %v", err)
	}
	if err := stopCollector(); err != nil {
		t.Fatalf("collector shutdown: %v", err)
	}

	// A fresh collector process on the same snapshot dir answers at once.
	revivedURL, stopRevived := startDaemon(t, options{role: "collector", snapshotDir: dir})
	if v, ok := readEstimate(revivedURL); !ok || v != 3 {
		t.Fatalf("revived collector estimate = %v (served %v), want 3 from the restored snapshot", v, ok)
	}
	if err := stopRevived(); err != nil {
		t.Fatalf("revived collector shutdown: %v", err)
	}
}

// TestDaemonWindowDefaults boots an agent with the -window/-epoch fleet
// defaults and checks the shipped global estimate answers both scopes.
func TestDaemonWindowDefaults(t *testing.T) {
	collectorURL, stopCollector := startDaemon(t, options{role: "collector", maxSummaryAge: time.Hour})
	agentURL, stopAgent := startDaemon(t, options{
		role:     "agent",
		id:       "windowed-agent",
		upstream: collectorURL,
		flush:    50 * time.Millisecond,
		window:   3,
		epoch:    time.Hour, // one epoch spans the whole test
		streams:  `{"flows": {"stat": "f0", "p": 0.5, "seed": 7, "presampled": true}}`,
	})

	resp, err := http.Post(agentURL+"/v1/streams/flows/ingest", "text/plain",
		strings.NewReader("1\n2\n3\n2\n1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(collectorURL + "/v1/streams/flows/estimate")
		if err == nil && resp.StatusCode == http.StatusOK {
			var got struct {
				Estimates struct {
					Values map[string]float64 `json:"values"`
				} `json:"estimates"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if got.Estimates.Values["f0_sampled"] == 3 && got.Estimates.Values["window_f0_sampled"] == 3 {
				break
			}
		} else if resp != nil {
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("collector never served the windowed estimate")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := stopAgent(); err != nil {
		t.Fatalf("agent shutdown: %v", err)
	}
	if err := stopCollector(); err != nil {
		t.Fatalf("collector shutdown: %v", err)
	}
}

// TestApplyWindowDefaults pins the flag/config precedence: explicit
// per-stream values always beat the fleet flags, and -epoch also serves
// streams that declared their own window without an epoch.
func TestApplyWindowDefaults(t *testing.T) {
	streams := map[string]server.StreamConfig{
		"bare":         {Stat: "f0", P: 0.5},
		"own-window":   {Stat: "f0", P: 0.5, Window: 6},
		"own-epoch":    {Stat: "f0", P: 0.5, Window: 6, Epoch: server.Duration(10 * time.Second)},
		"full-explict": {Stat: "f0", P: 0.5, Window: 2, Epoch: server.Duration(time.Hour)},
	}
	applyWindowDefaults(streams, 4, 30*time.Second)
	want := map[string]struct {
		window int
		epoch  server.Duration
	}{
		"bare":         {4, server.Duration(30 * time.Second)},
		"own-window":   {6, server.Duration(30 * time.Second)},
		"own-epoch":    {6, server.Duration(10 * time.Second)},
		"full-explict": {2, server.Duration(time.Hour)},
	}
	for name, w := range want {
		got := streams[name]
		if got.Window != w.window || got.Epoch != w.epoch {
			t.Errorf("%s: window=%d epoch=%v, want window=%d epoch=%v",
				name, got.Window, got.Epoch, w.window, w.epoch)
		}
	}
	// No flags: nothing changes, not even for windowed streams.
	streams2 := map[string]server.StreamConfig{"own-window": {Stat: "f0", P: 0.5, Window: 6}}
	applyWindowDefaults(streams2, 0, 0)
	if got := streams2["own-window"]; got.Window != 6 || got.Epoch != 0 {
		t.Errorf("flagless defaults mutated the config: %+v", got)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := run(ctx, options{role: "supervisor"}, &out); err == nil {
		t.Fatal("unknown role accepted")
	}
	if err := run(ctx, options{role: "agent", listen: "127.0.0.1:0", streams: "{bad json"}, &out); err == nil {
		t.Fatal("bad streams JSON accepted")
	}
	if err := run(ctx, options{role: "agent", listen: "127.0.0.1:0", streams: "/no/such/file.json"}, &out); err == nil {
		t.Fatal("missing streams file accepted")
	}
}

func TestParseStreamsFile(t *testing.T) {
	path := t.TempDir() + "/streams.json"
	if err := os.WriteFile(path, []byte(`{"a": {"stat": "entropy", "p": 0.1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	streams, err := parseStreams(path)
	if err != nil {
		t.Fatal(err)
	}
	if streams["a"].Stat != "entropy" || streams["a"].P != 0.1 {
		t.Fatalf("parsed %+v", streams["a"])
	}
}

func TestListEstimators(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), options{list: true}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"fk", "0x20", "f0", "all", "countsketch", "iw", "window", "0x30", "quantile", "0x40"} {
		if !strings.Contains(got, want) {
			t.Fatalf("-list-estimators output missing %q:\n%s", want, got)
		}
	}
	quantileRow := false
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "topk") || strings.HasPrefix(line, "window") {
			if !strings.Contains(line, "decode-only") {
				t.Fatalf("decode-only kind unmarked: %q", line)
			}
		}
		// Quantile streams are declarable (stat MODE), unlike the wrapper.
		if strings.HasPrefix(line, "quantile") {
			quantileRow = true
			if !strings.Contains(line, "stat") || strings.Contains(line, "decode-only") {
				t.Fatalf("quantile row not marked as a stat kind: %q", line)
			}
		}
	}
	if !quantileRow {
		t.Fatal("no quantile row in -list-estimators output")
	}
}
