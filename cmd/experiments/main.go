// Command experiments regenerates every reproduction table (E1–E10 in
// DESIGN.md §3). Each experiment validates one quantitative claim of the
// paper; the output of a full run is recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-run E1,E4] [-scale 1.0] [-trials 0] [-seed 24067] [-list]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"substream/internal/estimator"
	"substream/internal/experiments"
	_ "substream/internal/quantile"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		// Flag-parse failures were already reported (with usage) by the
		// FlagSet on stderr; don't print them twice.
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
		os.Exit(1)
	}
}

// errUsage marks flag-parse failures the FlagSet has already reported.
var errUsage = errors.New("usage error")

// run parses args and executes the selected experiments, writing every
// table to w and diagnostics (usage, flag errors) to errW. Split from
// main so the smoke test can drive the whole pipeline in-process.
func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runIDs = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		scale  = fs.Float64("scale", 1.0, "workload scale factor (1.0 = full run)")
		trials = fs.Int("trials", 0, "override trials per cell (0 = per-experiment default)")
		seed   = fs.Uint64("seed", 24067, "master seed")
		list   = fs.Bool("list", false, "list experiments and exit")
		listE  = fs.Bool("list-estimators", false, "list the registered estimator kinds the experiments draw on and exit")
		par    = fs.Bool("parallel", false, "run experiments concurrently (output buffered per experiment)")
	)
	fs.SetOutput(errW)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h is a successful exit, not an error
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(w, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}
	if *listE {
		estimator.WriteKinds(w)
		return nil
	}

	want := map[string]bool{}
	if *runIDs != "" {
		for _, id := range strings.Split(*runIDs, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	cfg := experiments.Config{Scale: *scale, Trials: *trials, Seed: *seed}
	var selected []experiments.Experiment
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiments matched -run=%q; use -list", *runIDs)
	}

	outputs := make([]string, len(selected))
	runOne := func(i int) {
		e := selected[i]
		var sb strings.Builder
		fmt.Fprintf(&sb, "=== %s: %s\n    claim: %s\n\n", e.ID, e.Title, e.Claim)
		start := time.Now()
		for _, t := range e.Run(cfg) {
			t.Render(&sb)
		}
		fmt.Fprintf(&sb, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		outputs[i] = sb.String()
	}
	if *par {
		var wg sync.WaitGroup
		for i := range selected {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runOne(i)
			}(i)
		}
		wg.Wait()
		for _, out := range outputs {
			fmt.Fprint(w, out)
		}
	} else {
		for i := range selected {
			runOne(i)
			fmt.Fprint(w, outputs[i])
		}
	}
	return nil
}
