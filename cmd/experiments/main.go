// Command experiments regenerates every reproduction table (E1–E10 in
// DESIGN.md §3). Each experiment validates one quantitative claim of the
// paper; the output of a full run is recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-run E1,E4] [-scale 1.0] [-trials 0] [-seed 24067] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"substream/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		scale  = flag.Float64("scale", 1.0, "workload scale factor (1.0 = full run)")
		trials = flag.Int("trials", 0, "override trials per cell (0 = per-experiment default)")
		seed   = flag.Uint64("seed", 24067, "master seed")
		list   = flag.Bool("list", false, "list experiments and exit")
		par    = flag.Bool("parallel", false, "run experiments concurrently (output buffered per experiment)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	cfg := experiments.Config{Scale: *scale, Trials: *trials, Seed: *seed}
	var selected []experiments.Experiment
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -run=%q; use -list\n", *run)
		os.Exit(1)
	}

	outputs := make([]string, len(selected))
	runOne := func(i int) {
		e := selected[i]
		var sb strings.Builder
		fmt.Fprintf(&sb, "=== %s: %s\n    claim: %s\n\n", e.ID, e.Title, e.Claim)
		start := time.Now()
		for _, t := range e.Run(cfg) {
			t.Render(&sb)
		}
		fmt.Fprintf(&sb, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		outputs[i] = sb.String()
	}
	if *par {
		var wg sync.WaitGroup
		for i := range selected {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runOne(i)
			}(i)
		}
		wg.Wait()
		for _, out := range outputs {
			fmt.Print(out)
		}
	} else {
		for i := range selected {
			runOne(i)
			fmt.Print(outputs[i])
		}
	}
}
