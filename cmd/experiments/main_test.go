package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E5", "E10"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("-list output missing %s:\n%s", id, out.String())
		}
	}
}

func TestListEstimators(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list-estimators"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"fk", "0x20", "countmin", "MODE", "quantile", "0x40"} {
		if !strings.Contains(got, want) {
			t.Fatalf("-list-estimators output missing %q:\n%s", want, got)
		}
	}
	quantileRow := false
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "topk") {
			if !strings.Contains(line, "decode-only") {
				t.Fatalf("decode-only kind unmarked: %q", line)
			}
		}
		if strings.HasPrefix(line, "quantile") {
			quantileRow = true
			if !strings.Contains(line, "stat") || strings.Contains(line, "decode-only") {
				t.Fatalf("quantile row not marked as a stat kind: %q", line)
			}
		}
	}
	if !quantileRow {
		t.Fatal("no quantile row in -list-estimators output")
	}
}

func TestRunSingleExperimentSmoke(t *testing.T) {
	var out strings.Builder
	// A tiny-scale single-trial run of one experiment exercises the whole
	// selection/config/render path without taking benchmark-scale time.
	if err := run([]string{"-run", "E3", "-scale", "0.05", "-trials", "1", "-seed", "9"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "=== E3") || !strings.Contains(out.String(), "completed in") {
		t.Fatalf("unexpected run output:\n%s", out.String())
	}
}

func TestRunRejectsUnknownID(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E99"}, &out, io.Discard); err == nil {
		t.Fatal("unknown experiment ID accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "banana"}, &out, io.Discard); err == nil {
		t.Fatal("bad flag value accepted")
	}
}
