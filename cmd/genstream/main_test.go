package main

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"substream/internal/stream"
)

func TestBuildAllKinds(t *testing.T) {
	kinds := []string{
		"zipf", "uniform", "distinct", "constfreq", "planted",
		"netflow", "f0adversarial", "entropy1", "entropy2",
	}
	for _, kind := range kinds {
		wl, err := build(kind, 5000, 200, 1.1, 0.1, 5, 7, io.Discard)
		if err != nil {
			t.Fatalf("kind %s: %v", kind, err)
		}
		if wl.Stream.Len() == 0 {
			t.Fatalf("kind %s produced empty stream", kind)
		}
		if err := stream.Validate(wl.Stream, wl.Universe); err != nil {
			// Planted/netflow universes are nominal; only hard kinds
			// must validate exactly.
			switch kind {
			case "zipf", "uniform", "distinct", "constfreq":
				t.Fatalf("kind %s: %v", kind, err)
			}
		}
		if wl.Name == "" {
			t.Fatalf("kind %s has no name", kind)
		}
	}
}

func TestBuildUnknownKind(t *testing.T) {
	if _, err := build("nope", 100, 10, 1, 0.1, 1, 1, io.Discard); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBuildConstFreqSmallN(t *testing.T) {
	// n < m: repeat clamps to 1.
	wl, err := build("constfreq", 10, 100, 1, 0.1, 1, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Stream.Len() != 100 {
		t.Fatalf("length %d", wl.Stream.Len())
	}
}

func TestRunWritesStream(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-kind", "uniform", "-n", "100", "-m", "10"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s, err := stream.ReadText(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 100 {
		t.Fatalf("wrote %d items, want 100", len(s))
	}
	if !strings.Contains(errOut.String(), "wrote ") {
		t.Fatalf("missing summary line on errW: %q", errOut.String())
	}
}

// TestRunWritesWeightedStream pins the -weights contract: same seed ⇒
// same key sequence as the unweighted run, weights ≥ 1 (Pareto scale),
// output parseable by the weighted reader.
func TestRunWritesWeightedStream(t *testing.T) {
	var plain, weighted, errOut bytes.Buffer
	args := []string{"-kind", "zipf", "-n", "200", "-m", "20", "-seed", "9"}
	if err := run(args, &plain, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-weights", "1.3"), &weighted, &errOut); err != nil {
		t.Fatal(err)
	}
	keys, err := stream.ReadText(&plain)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := stream.ReadWeightedText(&weighted)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != len(keys) {
		t.Fatalf("weighted run wrote %d items, unweighted %d", len(ws), len(keys))
	}
	for i := range ws {
		if ws[i].Key != keys[i] {
			t.Fatalf("item %d: -weights reshuffled keys (%d vs %d)", i, ws[i].Key, keys[i])
		}
		if ws[i].Weight < 1 {
			t.Fatalf("item %d: Pareto weight %v below scale 1", i, ws[i].Weight)
		}
	}
	if !strings.Contains(errOut.String(), "weighted items") {
		t.Fatalf("missing weighted summary line on errW: %q", errOut.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		// usage errors come pre-reported by the FlagSet; validation
		// errors must be printed by main, so the distinction matters.
		wantUsage bool
	}{
		{"unknown flag", []string{"-nope"}, true},
		{"malformed value", []string{"-n", "banana"}, true},
		{"unknown kind", []string{"-kind", "nope"}, false},
		{"zero n", []string{"-n", "0"}, false},
		{"zero m", []string{"-m", "0"}, false},
		{"zero hh", []string{"-hh", "0"}, false},
		{"bad p", []string{"-p", "1.5"}, false},
		{"negative weights", []string{"-weights", "-1"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			err := run(tc.args, &out, &errOut)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if got := errors.Is(err, errUsage); got != tc.wantUsage {
				t.Fatalf("args %v: errUsage=%v, want %v (err: %v)", tc.args, got, tc.wantUsage, err)
			}
			if out.Len() != 0 {
				t.Fatalf("args %v wrote stream output despite error: %q", tc.args, out.String())
			}
		})
	}
}

func TestRunHelpIsSuccess(t *testing.T) {
	var errOut bytes.Buffer
	if err := run([]string{"-h"}, io.Discard, &errOut); err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	if !strings.Contains(errOut.String(), "-kind") {
		t.Fatalf("usage text missing from errW: %q", errOut.String())
	}
}
