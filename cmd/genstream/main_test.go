package main

import (
	"testing"

	"substream/internal/stream"
)

func TestBuildAllKinds(t *testing.T) {
	kinds := []string{
		"zipf", "uniform", "distinct", "constfreq", "planted",
		"netflow", "f0adversarial", "entropy1", "entropy2",
	}
	for _, kind := range kinds {
		wl, err := build(kind, 5000, 200, 1.1, 0.1, 5, 7)
		if err != nil {
			t.Fatalf("kind %s: %v", kind, err)
		}
		if wl.Stream.Len() == 0 {
			t.Fatalf("kind %s produced empty stream", kind)
		}
		if err := stream.Validate(wl.Stream, wl.Universe); err != nil {
			// Planted/netflow universes are nominal; only hard kinds
			// must validate exactly.
			switch kind {
			case "zipf", "uniform", "distinct", "constfreq":
				t.Fatalf("kind %s: %v", kind, err)
			}
		}
		if wl.Name == "" {
			t.Fatalf("kind %s has no name", kind)
		}
	}
}

func TestBuildUnknownKind(t *testing.T) {
	if _, err := build("nope", 100, 10, 1, 0.1, 1, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBuildConstFreqSmallN(t *testing.T) {
	// n < m: repeat clamps to 1.
	wl, err := build("constfreq", 10, 100, 1, 0.1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Stream.Len() != 100 {
		t.Fatalf("length %d", wl.Stream.Len())
	}
}
