// Command genstream writes a synthetic workload stream to stdout or a
// file, in the text format cmd/substream consumes.
//
// Usage:
//
//	genstream -kind zipf -n 100000 -m 4096 -s 1.1 [-seed 1] [-out stream.txt]
//	genstream -kind netflow -n 100000 -weights 1.3 [-out flows.txt]
//
// Kinds: zipf, uniform, distinct, constfreq, planted, netflow,
// f0adversarial, entropy1, entropy2.
//
// With -weights α > 0 every item additionally carries a Pareto(α)
// weight (scale 1, so weights are ≥ 1 with a heavy tail for small α —
// bytes-per-flow-shaped) and the output switches to the weighted text
// format ("key weight" per line) that substream -weighted and the
// daemon's text/vnd.substream.weighted ingest consume.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"substream/internal/rng"
	"substream/internal/stream"
	"substream/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		// Flag-parse failures were already reported (with usage) by the
		// FlagSet on stderr; don't print them twice.
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, "genstream:", err)
		}
		os.Exit(1)
	}
}

// errUsage marks flag-parse failures the FlagSet has already reported.
var errUsage = errors.New("usage error")

// run parses args, builds the workload, and writes it to -out (or w
// when -out is unset). Diagnostics go to errW. Split from main so tests
// can assert usage and validation errors in-process.
func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("genstream", flag.ContinueOnError)
	var (
		kind    = fs.String("kind", "zipf", "workload kind")
		n       = fs.Int("n", 100000, "stream length")
		m       = fs.Int("m", 4096, "universe size / distinct items")
		s       = fs.Float64("s", 1.1, "zipf/netflow skew")
		p       = fs.Float64("p", 0.1, "target sampling probability (entropy1 instance)")
		hh      = fs.Int("hh", 5, "planted heavy hitters")
		seed    = fs.Uint64("seed", 1, "random seed")
		weights = fs.Float64("weights", 0, "Pareto shape for per-item weights (0 = unweighted output)")
		out     = fs.String("out", "", "output file (default stdout)")
	)
	fs.SetOutput(errW)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h is a successful exit, not an error
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if *n < 1 {
		return fmt.Errorf("-n must be >= 1, got %d", *n)
	}
	if *m < 1 {
		return fmt.Errorf("-m must be >= 1, got %d", *m)
	}
	if *hh < 1 {
		return fmt.Errorf("-hh must be >= 1, got %d", *hh)
	}
	if *p <= 0 || *p > 1 {
		return fmt.Errorf("-p must be in (0, 1], got %v", *p)
	}
	if *weights < 0 {
		return fmt.Errorf("-weights must be >= 0, got %v", *weights)
	}

	wl, err := build(*kind, *n, *m, *s, *p, *hh, *seed, errW)
	if err != nil {
		return err
	}

	dst := w
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if *weights > 0 {
		// Weight generation draws from a generator split off the workload
		// seed so the key sequence is identical to the unweighted run of
		// the same seed — -weights adds a column, it does not reshuffle.
		ws := attachParetoWeights(wl.Stream, *weights, *seed)
		if err := stream.WriteWeightedText(dst, ws); err != nil {
			return err
		}
		fmt.Fprintf(errW, "wrote %s: %d weighted items (Pareto α=%g), universe %d\n",
			wl.Name, len(ws), *weights, wl.Universe)
		return nil
	}
	if err := stream.WriteText(dst, wl.Stream); err != nil {
		return err
	}
	fmt.Fprintf(errW, "wrote %s: %d items, universe %d\n", wl.Name, wl.Stream.Len(), wl.Universe)
	return nil
}

// attachParetoWeights pairs every item of s with an independent
// Pareto(alpha) weight of scale 1. Pareto variates are ≥ 1 and finite,
// so the result always satisfies the wire's positive-and-finite rule.
func attachParetoWeights(s stream.Stream, alpha float64, seed uint64) stream.WSlice {
	r := rng.New(seed).Split()
	ws := make(stream.WSlice, 0, s.Len())
	_ = s.ForEach(func(it stream.Item) error {
		ws = append(ws, stream.WItem{Key: it, Weight: rng.Pareto(r, 1, alpha)})
		return nil
	})
	return ws
}

func build(kind string, n, m int, s, p float64, hh int, seed uint64, errW io.Writer) (workload.Workload, error) {
	switch kind {
	case "zipf":
		return workload.Zipf(n, m, s, seed), nil
	case "uniform":
		return workload.Uniform(n, m, seed), nil
	case "distinct":
		return workload.AllDistinct(n), nil
	case "constfreq":
		repeat := n / m
		if repeat < 1 {
			repeat = 1
		}
		return workload.ConstantFreq(m, repeat, seed), nil
	case "planted":
		return workload.PlantedHH(n, hh, n/(hh*10), m, seed), nil
	case "netflow":
		wl, _ := workload.NetFlow(n, m, s, 1.3, 4, seed)
		return wl, nil
	case "f0adversarial":
		wl, dup := workload.F0Adversarial(n, m, seed)
		fmt.Fprintf(errW, "f0adversarial branch: duplicated=%v\n", dup)
		return wl, nil
	case "entropy1":
		return workload.EntropyScenario1(n, p), nil
	case "entropy2":
		return workload.EntropyScenario2(m), nil
	default:
		return workload.Workload{}, fmt.Errorf("unknown kind %q", kind)
	}
}
