// Command genstream writes a synthetic workload stream to stdout or a
// file, in the text format cmd/substream consumes.
//
// Usage:
//
//	genstream -kind zipf -n 100000 -m 4096 -s 1.1 [-seed 1] [-out stream.txt]
//
// Kinds: zipf, uniform, distinct, constfreq, planted, netflow,
// f0adversarial, entropy1, entropy2.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"substream/internal/stream"
	"substream/internal/workload"
)

func main() {
	var (
		kind = flag.String("kind", "zipf", "workload kind")
		n    = flag.Int("n", 100000, "stream length")
		m    = flag.Int("m", 4096, "universe size / distinct items")
		s    = flag.Float64("s", 1.1, "zipf/netflow skew")
		p    = flag.Float64("p", 0.1, "target sampling probability (entropy1 instance)")
		hh   = flag.Int("hh", 5, "planted heavy hitters")
		seed = flag.Uint64("seed", 1, "random seed")
		out  = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	wl, err := build(*kind, *n, *m, *s, *p, *hh, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genstream:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genstream:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := stream.WriteText(w, wl.Stream); err != nil {
		fmt.Fprintln(os.Stderr, "genstream:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d items, universe %d\n", wl.Name, wl.Stream.Len(), wl.Universe)
}

func build(kind string, n, m int, s, p float64, hh int, seed uint64) (workload.Workload, error) {
	switch kind {
	case "zipf":
		return workload.Zipf(n, m, s, seed), nil
	case "uniform":
		return workload.Uniform(n, m, seed), nil
	case "distinct":
		return workload.AllDistinct(n), nil
	case "constfreq":
		repeat := n / m
		if repeat < 1 {
			repeat = 1
		}
		return workload.ConstantFreq(m, repeat, seed), nil
	case "planted":
		return workload.PlantedHH(n, hh, n/(hh*10), m, seed), nil
	case "netflow":
		wl, _ := workload.NetFlow(n, m, s, 1.3, 4, seed)
		return wl, nil
	case "f0adversarial":
		wl, dup := workload.F0Adversarial(n, m, seed)
		fmt.Fprintf(os.Stderr, "f0adversarial branch: duplicated=%v\n", dup)
		return wl, nil
	case "entropy1":
		return workload.EntropyScenario1(n, p), nil
	case "entropy2":
		return workload.EntropyScenario2(m), nil
	default:
		return workload.Workload{}, fmt.Errorf("unknown kind %q", kind)
	}
}
