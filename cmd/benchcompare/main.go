// Command benchcompare renders the throughput delta between
// BENCH_<sha>.json artifacts (the test2json benchmark trajectory CI
// uploads per commit) as a Markdown table, benchstat-style: one row per
// benchmark present in both files, with ns/op and MB/s deltas.
//
// It is the comparison half of CI's bench steps. The cross-machine
// PR-base comparison stays warn-only:
//
//	benchcompare BENCH_base.json BENCH_head.json >> "$GITHUB_STEP_SUMMARY"
//
// while the same-benchmark ingest gate runs it in failing mode against
// the committed baseline:
//
//	go test -bench ServerIngest -count 3 -json . > head.json
//	benchcompare -best-of -match ServerIngest -max-regression 10 \
//	  bench/BENCH_pr8.json head.json
//
// Flags:
//
//   - -threshold (percent, default 5) hides rows whose ns/op moved less
//     than the threshold; -threshold 0 lists everything.
//   - -best-of keeps the LOWEST ns/op seen per benchmark instead of the
//     last, so a `-count N` run (or several head files) gates on the
//     best of N — the noise-robust statistic for a shared runner.
//   - -match compares only benchmarks whose name contains the substring.
//   - -max-regression (percent, default 0 = disabled) exits with status
//     3 when any compared benchmark's ns/op regressed by more than the
//     bound — the red-gate mode.
//
// More than two files may be given: every file after the first is a
// head artifact, merged (last-wins, or best-of under -best-of). Exit
// status: 0 ok, 1 unreadable input, 2 usage, 3 regression gate tripped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark's parsed metrics.
type benchResult struct {
	NsPerOp float64
	MBPerS  float64
	HasMBs  bool
}

// testEvent is the subset of a test2json event the parser needs.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

func main() {
	threshold := flag.Float64("threshold", 5, "hide rows whose ns/op changed by less than this percentage (0 = show all)")
	bestOf := flag.Bool("best-of", false, "keep the lowest ns/op per benchmark across repeated results (-count runs, multiple head files) instead of the last")
	match := flag.String("match", "", "compare only benchmarks whose name contains this substring")
	maxReg := flag.Float64("max-regression", 0, "exit 3 if any compared benchmark's ns/op regressed by more than this percentage (0 = never fail)")
	flag.Parse()
	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare [flags] BASE.json HEAD.json [HEAD2.json ...]")
		os.Exit(2)
	}
	base, err := parseFile(flag.Arg(0), *bestOf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	head := make(map[string]benchResult)
	for _, path := range flag.Args()[1:] {
		h, err := parseFile(path, *bestOf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcompare:", err)
			os.Exit(1)
		}
		for name, res := range h {
			merge(head, name, res, *bestOf)
		}
	}
	filter(base, *match)
	filter(head, *match)
	if err := render(os.Stdout, base, head, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	if *maxReg > 0 {
		if failed := gate(base, head, *maxReg); len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "benchcompare: regression gate (> %g%% ns/op): %s\n",
				*maxReg, strings.Join(failed, ", "))
			os.Exit(3)
		}
	}
}

func parseFile(path string, bestOf bool) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f, bestOf)
}

// merge folds one result into out: last-wins normally, lowest ns/op
// under best-of.
func merge(out map[string]benchResult, name string, res benchResult, bestOf bool) {
	if prev, ok := out[name]; bestOf && ok && prev.NsPerOp <= res.NsPerOp {
		return
	}
	out[name] = res
}

// filter drops benchmarks whose name does not contain match.
func filter(m map[string]benchResult, match string) {
	if match == "" {
		return
	}
	for name := range m {
		if !strings.Contains(name, match) {
			delete(m, name)
		}
	}
}

// gate returns the names of benchmarks whose ns/op regressed by more
// than maxReg percent, sorted.
func gate(base, head map[string]benchResult, maxReg float64) []string {
	var failed []string
	for name, h := range head {
		b, ok := base[name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if delta := (h.NsPerOp - b.NsPerOp) / b.NsPerOp * 100; delta > maxReg {
			failed = append(failed, fmt.Sprintf("%s %+.1f%%", name, delta))
		}
	}
	sort.Strings(failed)
	return failed
}

// parse extracts benchmark results from a test2json stream. go test
// emits a sub-benchmark's result as a name-only line followed by a
// metrics-only output event whose Test field carries the benchmark
// name:
//
//	{"Action":"output","Test":"BenchmarkHotPath/countmin/batch1024",
//	 "Output":"   27602\t     21325 ns/op\t 384.16 MB/s\t ...\n"}
//
// while top-level benchmarks (and raw, non-JSON `go test` output, which
// is accepted too so local runs compare without CI) put name and
// metrics on one `Benchmark... ns/op` line. Both shapes are parsed.
// Repeated results for one name (a -count run) keep the last, or the
// lowest ns/op under bestOf.
func parse(r io.Reader, bestOf bool) (map[string]benchResult, error) {
	out := make(map[string]benchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		test := ""
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				continue // tolerate foreign lines; the artifact is best-effort
			}
			if ev.Action != "output" {
				continue
			}
			line = strings.TrimSuffix(ev.Output, "\n")
			test = ev.Test
		}
		if name, res, ok := parseBenchLine(line); ok {
			merge(out, name, res, bestOf)
			continue
		}
		if test != "" && strings.HasPrefix(test, "Benchmark") {
			if res, ok := parseMetrics(strings.Fields(line)); ok {
				merge(out, test, res, bestOf)
			}
		}
	}
	return out, sc.Err()
}

// parseBenchLine parses a single-line `Benchmark... ns/op` result.
func parseBenchLine(line string) (string, benchResult, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", benchResult{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", benchResult{}, false
	}
	// Strip the -GOMAXPROCS suffix so runs from machines with different
	// core counts still line up.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res, ok := parseMetrics(fields[1:])
	return name, res, ok
}

// parseMetrics scans "value unit" field pairs for the metrics the table
// reports; ns/op is mandatory for a line to count as a result.
func parseMetrics(fields []string) (benchResult, bool) {
	var res benchResult
	found := false
	for i := 0; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			found = true
		case "MB/s":
			res.MBPerS = v
			res.HasMBs = true
		}
	}
	return res, found
}

// render writes the Markdown comparison table.
func render(w io.Writer, base, head map[string]benchResult, threshold float64) error {
	names := make([]string, 0, len(head))
	for name := range head {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "### Benchmark comparison\n\n")
	if len(names) == 0 {
		fmt.Fprintf(w, "No benchmarks common to both artifacts.\n")
		return nil
	}
	shown, regressions := 0, 0
	var rows strings.Builder
	for _, name := range names {
		b, h := base[name], head[name]
		if b.NsPerOp <= 0 {
			continue
		}
		delta := (h.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		if delta > threshold {
			regressions++
		}
		if threshold > 0 && delta > -threshold && delta < threshold {
			continue
		}
		shown++
		mbs := ""
		if b.HasMBs && h.HasMBs {
			mbs = fmt.Sprintf("%.1f → %.1f", b.MBPerS, h.MBPerS)
		}
		fmt.Fprintf(&rows, "| %s | %.4g | %.4g | %+.1f%% | %s |\n",
			strings.TrimPrefix(name, "Benchmark"), b.NsPerOp, h.NsPerOp, delta, mbs)
	}
	fmt.Fprintf(w, "%d benchmarks compared, %d moved ≥ %g%% (slower-than-threshold: %d).\n\n",
		len(names), shown, threshold, regressions)
	if shown > 0 {
		fmt.Fprintf(w, "| benchmark | base ns/op | head ns/op | Δ ns/op | MB/s |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|\n")
		fmt.Fprint(w, rows.String())
	}
	return nil
}
