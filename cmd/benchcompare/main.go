// Command benchcompare renders the throughput delta between two
// BENCH_<sha>.json artifacts (the test2json benchmark trajectory CI
// uploads per commit) as a Markdown table, benchstat-style: one row per
// benchmark present in both files, with ns/op and MB/s deltas.
//
// It is the comparison half of CI's warn-only bench-compare step: the
// workflow downloads the base commit's artifact, runs
//
//	benchcompare BENCH_base.json BENCH_head.json >> "$GITHUB_STEP_SUMMARY"
//
// and never fails the job on a regression — machine noise across
// shared runners makes a red gate flaky; the table makes the trajectory
// visible instead. Exit status is non-zero only for unreadable input.
//
// The -threshold flag (percent, default 5) hides rows whose ns/op moved
// less than the threshold, keeping the summary focused on real shifts;
// pass -threshold 0 to list everything.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark's parsed metrics.
type benchResult struct {
	NsPerOp float64
	MBPerS  float64
	HasMBs  bool
}

// testEvent is the subset of a test2json event the parser needs.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

func main() {
	threshold := flag.Float64("threshold", 5, "hide rows whose ns/op changed by less than this percentage (0 = show all)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare [-threshold pct] BASE.json HEAD.json")
		os.Exit(2)
	}
	base, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	head, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	if err := render(os.Stdout, base, head, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
}

func parseFile(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

// parse extracts benchmark results from a test2json stream. go test
// emits a sub-benchmark's result as a name-only line followed by a
// metrics-only output event whose Test field carries the benchmark
// name:
//
//	{"Action":"output","Test":"BenchmarkHotPath/countmin/batch1024",
//	 "Output":"   27602\t     21325 ns/op\t 384.16 MB/s\t ...\n"}
//
// while top-level benchmarks (and raw, non-JSON `go test` output, which
// is accepted too so local runs compare without CI) put name and
// metrics on one `Benchmark... ns/op` line. Both shapes are parsed.
func parse(r io.Reader) (map[string]benchResult, error) {
	out := make(map[string]benchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		test := ""
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				continue // tolerate foreign lines; the artifact is best-effort
			}
			if ev.Action != "output" {
				continue
			}
			line = strings.TrimSuffix(ev.Output, "\n")
			test = ev.Test
		}
		if name, res, ok := parseBenchLine(line); ok {
			out[name] = res
			continue
		}
		if test != "" && strings.HasPrefix(test, "Benchmark") {
			if res, ok := parseMetrics(strings.Fields(line)); ok {
				out[test] = res
			}
		}
	}
	return out, sc.Err()
}

// parseBenchLine parses a single-line `Benchmark... ns/op` result.
func parseBenchLine(line string) (string, benchResult, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", benchResult{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", benchResult{}, false
	}
	// Strip the -GOMAXPROCS suffix so runs from machines with different
	// core counts still line up.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res, ok := parseMetrics(fields[1:])
	return name, res, ok
}

// parseMetrics scans "value unit" field pairs for the metrics the table
// reports; ns/op is mandatory for a line to count as a result.
func parseMetrics(fields []string) (benchResult, bool) {
	var res benchResult
	found := false
	for i := 0; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			found = true
		case "MB/s":
			res.MBPerS = v
			res.HasMBs = true
		}
	}
	return res, found
}

// render writes the Markdown comparison table.
func render(w io.Writer, base, head map[string]benchResult, threshold float64) error {
	names := make([]string, 0, len(head))
	for name := range head {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "### Benchmark comparison (warn-only)\n\n")
	if len(names) == 0 {
		fmt.Fprintf(w, "No benchmarks common to both artifacts.\n")
		return nil
	}
	shown, regressions := 0, 0
	var rows strings.Builder
	for _, name := range names {
		b, h := base[name], head[name]
		if b.NsPerOp <= 0 {
			continue
		}
		delta := (h.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		if delta > threshold {
			regressions++
		}
		if threshold > 0 && delta > -threshold && delta < threshold {
			continue
		}
		shown++
		mbs := ""
		if b.HasMBs && h.HasMBs {
			mbs = fmt.Sprintf("%.1f → %.1f", b.MBPerS, h.MBPerS)
		}
		fmt.Fprintf(&rows, "| %s | %.4g | %.4g | %+.1f%% | %s |\n",
			strings.TrimPrefix(name, "Benchmark"), b.NsPerOp, h.NsPerOp, delta, mbs)
	}
	fmt.Fprintf(w, "%d benchmarks compared, %d moved ≥ %g%% (slower-than-threshold: %d; noise on shared runners — informational only).\n\n",
		len(names), shown, threshold, regressions)
	if shown > 0 {
		fmt.Fprintf(w, "| benchmark | base ns/op | head ns/op | Δ ns/op | MB/s |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|\n")
		fmt.Fprint(w, rows.String())
	}
	return nil
}
