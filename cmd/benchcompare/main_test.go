package main

import (
	"strings"
	"testing"
)

const baseJSON = `{"Action":"start","Package":"substream"}
{"Action":"output","Package":"substream","Output":"BenchmarkHotPath/countmin/batch1024-4 \t 5059 \t 45069 ns/op\t 181.76 MB/s\t 44.01 ns/item\t 0 B/op\t 0 allocs/op\n"}
{"Action":"output","Package":"substream","Output":"BenchmarkServerIngest/binary-4 \t 24532 \t 96507 ns/op\t 339.54 MB/s\t 138895 B/op\t 100 allocs/op\n"}
{"Action":"output","Package":"substream","Output":"BenchmarkOnlyInBase-4 \t 10 \t 100 ns/op\n"}
{"Action":"output","Package":"substream","Output":"not a benchmark line\n"}
`

const headJSON = `{"Action":"output","Package":"substream","Output":"BenchmarkHotPath/countmin/batch1024-8 \t 114550 \t 21383 ns/op\t 383.12 MB/s\t 20.88 ns/item\t 0 B/op\t 0 allocs/op\n"}
{"Action":"output","Package":"substream","Output":"BenchmarkServerIngest/binary-8 \t 40101 \t 58832 ns/op\t 556.98 MB/s\t 40281 B/op\t 97 allocs/op\n"}
{"Action":"output","Package":"substream","Output":"BenchmarkOnlyInHead-8 \t 10 \t 100 ns/op\n"}
`

func TestParseTest2JSON(t *testing.T) {
	base, err := parse(strings.NewReader(baseJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, ok := base["BenchmarkHotPath/countmin/batch1024"]
	if !ok {
		t.Fatalf("countmin benchmark not parsed (GOMAXPROCS suffix kept?): %v", base)
	}
	if res.NsPerOp != 45069 || !res.HasMBs || res.MBPerS != 181.76 {
		t.Fatalf("parsed metrics wrong: %+v", res)
	}
	if len(base) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(base))
	}
}

// TestParseSplitSubBenchmark covers go test's real sub-benchmark shape:
// a metrics-only output event whose Test field names the benchmark.
func TestParseSplitSubBenchmark(t *testing.T) {
	split := `{"Action":"run","Test":"BenchmarkHotPath/kmv/batch64"}
{"Action":"output","Test":"BenchmarkHotPath/kmv/batch64","Output":"BenchmarkHotPath/kmv/batch64\n"}
{"Action":"output","Test":"BenchmarkHotPath/kmv/batch64","Output":"  404896\t      1310 ns/op\t 390.81 MB/s\t        20.47 ns/item\t       0 B/op\t       0 allocs/op\n"}
`
	got, err := parse(strings.NewReader(split))
	if err != nil {
		t.Fatal(err)
	}
	res, ok := got["BenchmarkHotPath/kmv/batch64"]
	if !ok {
		t.Fatalf("split sub-benchmark not parsed: %v", got)
	}
	if res.NsPerOp != 1310 || res.MBPerS != 390.81 {
		t.Fatalf("split metrics wrong: %+v", res)
	}
}

func TestParsePlainBenchOutput(t *testing.T) {
	raw := "goos: linux\nBenchmarkX-2 \t 100 \t 250.5 ns/op\t 12.3 MB/s\nPASS\n"
	got, err := parse(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if res, ok := got["BenchmarkX"]; !ok || res.NsPerOp != 250.5 {
		t.Fatalf("plain output not parsed: %v", got)
	}
}

func TestRenderComparison(t *testing.T) {
	base, _ := parse(strings.NewReader(baseJSON))
	head, _ := parse(strings.NewReader(headJSON))
	var sb strings.Builder
	if err := render(&sb, base, head, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"2 benchmarks compared",
		"HotPath/countmin/batch1024",
		"ServerIngest/binary",
		"-52.6%", // countmin 45069 -> 21383
		"181.8 → 383.1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "OnlyInBase") || strings.Contains(out, "OnlyInHead") {
		t.Fatalf("benchmarks missing from one side must not be compared:\n%s", out)
	}
}

func TestRenderThresholdHidesNoise(t *testing.T) {
	base, _ := parse(strings.NewReader(`BenchmarkSame-1 	 10 	 100 ns/op` + "\n"))
	head, _ := parse(strings.NewReader(`BenchmarkSame-1 	 10 	 101 ns/op` + "\n"))
	var sb strings.Builder
	if err := render(&sb, base, head, 5); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "| Same |") {
		t.Fatalf("1%% move should be hidden at 5%% threshold:\n%s", sb.String())
	}
	sb.Reset()
	if err := render(&sb, base, head, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| Same |") {
		t.Fatalf("threshold 0 must show every row:\n%s", sb.String())
	}
}
