package main

import (
	"strings"
	"testing"
)

const baseJSON = `{"Action":"start","Package":"substream"}
{"Action":"output","Package":"substream","Output":"BenchmarkHotPath/countmin/batch1024-4 \t 5059 \t 45069 ns/op\t 181.76 MB/s\t 44.01 ns/item\t 0 B/op\t 0 allocs/op\n"}
{"Action":"output","Package":"substream","Output":"BenchmarkServerIngest/binary-4 \t 24532 \t 96507 ns/op\t 339.54 MB/s\t 138895 B/op\t 100 allocs/op\n"}
{"Action":"output","Package":"substream","Output":"BenchmarkOnlyInBase-4 \t 10 \t 100 ns/op\n"}
{"Action":"output","Package":"substream","Output":"not a benchmark line\n"}
`

const headJSON = `{"Action":"output","Package":"substream","Output":"BenchmarkHotPath/countmin/batch1024-8 \t 114550 \t 21383 ns/op\t 383.12 MB/s\t 20.88 ns/item\t 0 B/op\t 0 allocs/op\n"}
{"Action":"output","Package":"substream","Output":"BenchmarkServerIngest/binary-8 \t 40101 \t 58832 ns/op\t 556.98 MB/s\t 40281 B/op\t 97 allocs/op\n"}
{"Action":"output","Package":"substream","Output":"BenchmarkOnlyInHead-8 \t 10 \t 100 ns/op\n"}
`

func TestParseTest2JSON(t *testing.T) {
	base, err := parse(strings.NewReader(baseJSON), false)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := base["BenchmarkHotPath/countmin/batch1024"]
	if !ok {
		t.Fatalf("countmin benchmark not parsed (GOMAXPROCS suffix kept?): %v", base)
	}
	if res.NsPerOp != 45069 || !res.HasMBs || res.MBPerS != 181.76 {
		t.Fatalf("parsed metrics wrong: %+v", res)
	}
	if len(base) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(base))
	}
}

// TestParseSplitSubBenchmark covers go test's real sub-benchmark shape:
// a metrics-only output event whose Test field names the benchmark.
func TestParseSplitSubBenchmark(t *testing.T) {
	split := `{"Action":"run","Test":"BenchmarkHotPath/kmv/batch64"}
{"Action":"output","Test":"BenchmarkHotPath/kmv/batch64","Output":"BenchmarkHotPath/kmv/batch64\n"}
{"Action":"output","Test":"BenchmarkHotPath/kmv/batch64","Output":"  404896\t      1310 ns/op\t 390.81 MB/s\t        20.47 ns/item\t       0 B/op\t       0 allocs/op\n"}
`
	got, err := parse(strings.NewReader(split), false)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := got["BenchmarkHotPath/kmv/batch64"]
	if !ok {
		t.Fatalf("split sub-benchmark not parsed: %v", got)
	}
	if res.NsPerOp != 1310 || res.MBPerS != 390.81 {
		t.Fatalf("split metrics wrong: %+v", res)
	}
}

func TestParsePlainBenchOutput(t *testing.T) {
	raw := "goos: linux\nBenchmarkX-2 \t 100 \t 250.5 ns/op\t 12.3 MB/s\nPASS\n"
	got, err := parse(strings.NewReader(raw), false)
	if err != nil {
		t.Fatal(err)
	}
	if res, ok := got["BenchmarkX"]; !ok || res.NsPerOp != 250.5 {
		t.Fatalf("plain output not parsed: %v", got)
	}
}

func TestRenderComparison(t *testing.T) {
	base, _ := parse(strings.NewReader(baseJSON), false)
	head, _ := parse(strings.NewReader(headJSON), false)
	var sb strings.Builder
	if err := render(&sb, base, head, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"2 benchmarks compared",
		"HotPath/countmin/batch1024",
		"ServerIngest/binary",
		"-52.6%", // countmin 45069 -> 21383
		"181.8 → 383.1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "OnlyInBase") || strings.Contains(out, "OnlyInHead") {
		t.Fatalf("benchmarks missing from one side must not be compared:\n%s", out)
	}
}

// TestParseBestOf pins the -best-of semantics: a -count run emits the
// same benchmark several times, and best-of keeps the lowest ns/op (the
// noise-robust statistic on a shared runner), where the default keeps
// the last.
func TestParseBestOf(t *testing.T) {
	counted := "BenchmarkIngest-4 \t 10 \t 300 ns/op\t 100 MB/s\n" +
		"BenchmarkIngest-4 \t 10 \t 200 ns/op\t 150 MB/s\n" +
		"BenchmarkIngest-4 \t 10 \t 250 ns/op\t 120 MB/s\n"
	last, err := parse(strings.NewReader(counted), false)
	if err != nil {
		t.Fatal(err)
	}
	if res := last["BenchmarkIngest"]; res.NsPerOp != 250 {
		t.Fatalf("default must keep the last result, got %+v", res)
	}
	best, err := parse(strings.NewReader(counted), true)
	if err != nil {
		t.Fatal(err)
	}
	if res := best["BenchmarkIngest"]; res.NsPerOp != 200 || res.MBPerS != 150 {
		t.Fatalf("best-of must keep the lowest ns/op with its MB/s, got %+v", res)
	}
}

// TestMergeAcrossFiles covers the multi-head-file shape: each file after
// the base is parsed separately and folded together, best-of keeping the
// per-benchmark minimum across files.
func TestMergeAcrossFiles(t *testing.T) {
	head := map[string]benchResult{}
	for _, run := range []string{
		"BenchmarkIngest-4 \t 10 \t 280 ns/op\n",
		"BenchmarkIngest-4 \t 10 \t 210 ns/op\nBenchmarkOther-4 \t 10 \t 50 ns/op\n",
		"BenchmarkIngest-4 \t 10 \t 260 ns/op\n",
	} {
		h, err := parse(strings.NewReader(run), true)
		if err != nil {
			t.Fatal(err)
		}
		for name, res := range h {
			merge(head, name, res, true)
		}
	}
	if res := head["BenchmarkIngest"]; res.NsPerOp != 210 {
		t.Fatalf("merge must keep the minimum across files, got %+v", res)
	}
	if res := head["BenchmarkOther"]; res.NsPerOp != 50 {
		t.Fatalf("benchmarks present in one file must survive the merge, got %+v", res)
	}
}

func TestFilterMatch(t *testing.T) {
	m := map[string]benchResult{
		"BenchmarkServerIngest/binary": {NsPerOp: 1},
		"BenchmarkServerIngest/text":   {NsPerOp: 2},
		"BenchmarkHotPath/kmv":         {NsPerOp: 3},
	}
	filter(m, "ServerIngest")
	if len(m) != 2 {
		t.Fatalf("filter kept %d benchmarks, want the 2 ServerIngest ones: %v", len(m), m)
	}
	filter(m, "")
	if len(m) != 2 {
		t.Fatalf("empty match must be a no-op, got %v", m)
	}
}

// TestGate pins the red-gate contract: only regressions beyond the bound
// fail, improvements and benchmarks missing from the base never do.
func TestGate(t *testing.T) {
	base := map[string]benchResult{
		"BenchmarkIngest": {NsPerOp: 100},
		"BenchmarkOther":  {NsPerOp: 100},
	}
	head := map[string]benchResult{
		"BenchmarkIngest":  {NsPerOp: 109}, // +9%: inside a 10% bound
		"BenchmarkOther":   {NsPerOp: 90},  // improvement
		"BenchmarkNewOnly": {NsPerOp: 999}, // no baseline, cannot gate
	}
	if failed := gate(base, head, 10); len(failed) != 0 {
		t.Fatalf("within-bound head must pass the gate, got %v", failed)
	}
	head["BenchmarkIngest"] = benchResult{NsPerOp: 125}
	failed := gate(base, head, 10)
	if len(failed) != 1 || !strings.Contains(failed[0], "BenchmarkIngest") || !strings.Contains(failed[0], "+25.0%") {
		t.Fatalf("25%% regression must trip a 10%% gate with its delta, got %v", failed)
	}
}

func TestRenderThresholdHidesNoise(t *testing.T) {
	base, _ := parse(strings.NewReader(`BenchmarkSame-1 	 10 	 100 ns/op`+"\n"), false)
	head, _ := parse(strings.NewReader(`BenchmarkSame-1 	 10 	 101 ns/op`+"\n"), false)
	var sb strings.Builder
	if err := render(&sb, base, head, 5); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "| Same |") {
		t.Fatalf("1%% move should be hidden at 5%% threshold:\n%s", sb.String())
	}
	sb.Reset()
	if err := render(&sb, base, head, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| Same |") {
		t.Fatalf("threshold 0 must show every row:\n%s", sb.String())
	}
}
