// Package substream_bench holds the repository-level benchmark harness:
// one benchmark per reproduced experiment (E1–E10, DESIGN.md §3) plus
// throughput microbenchmarks for the estimators. The experiment benches
// call the same runners as cmd/experiments at reduced scale, so
// `go test -bench=.` regenerates every table's machinery end to end;
// the full-scale numbers live in EXPERIMENTS.md.
package substream_bench

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"substream/internal/core"
	"substream/internal/estimator"
	"substream/internal/experiments"
	"substream/internal/pipeline"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/server"
	"substream/internal/stream"
	"substream/internal/window"
	"substream/internal/workload"
)

// benchCfg keeps experiment benches laptop-fast; cmd/experiments runs the
// full scale.
var benchCfg = experiments.Config{Scale: 0.1, Trials: 3, Seed: 1}

func benchExperiment(b *testing.B, id string) {
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := exp.Run(benchCfg)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
		for _, t := range tables {
			t.Render(io.Discard)
		}
	}
}

func BenchmarkE1FkAccuracy(b *testing.B)           { benchExperiment(b, "E1") }
func BenchmarkE2TimeSpace(b *testing.B)            { benchExperiment(b, "E2") }
func BenchmarkE3F0LowerBound(b *testing.B)         { benchExperiment(b, "E3") }
func BenchmarkE4F0Accuracy(b *testing.B)           { benchExperiment(b, "E4") }
func BenchmarkE5EntropyImpossibility(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6EntropyRatio(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7F1HeavyHitters(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8F2HeavyHitters(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9F2VsScaling(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10LevelSet(b *testing.B)            { benchExperiment(b, "E10") }

// --- estimator throughput (items/sec on the sampled stream) ---

func sampledZipf(n int, p float64) stream.Slice {
	wl := workload.Zipf(n, 65536, 1.1, 7)
	return sample.NewBernoulli(p).Apply(wl.Stream, rng.New(8))
}

func BenchmarkFkObserveLevelSet(b *testing.B) {
	L := sampledZipf(1<<17, 0.2)
	e := core.NewFkEstimator(core.FkConfig{K: 2, P: 0.2, Budget: 4096}, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(L[i%len(L)])
	}
}

func BenchmarkFkObserveExact(b *testing.B) {
	L := sampledZipf(1<<17, 0.2)
	e := core.NewFkEstimator(core.FkConfig{K: 2, P: 0.2, Exact: true}, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(L[i%len(L)])
	}
}

func BenchmarkF0Observe(b *testing.B) {
	L := sampledZipf(1<<17, 0.2)
	e := core.NewF0Estimator(core.F0Config{P: 0.2}, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(L[i%len(L)])
	}
}

func BenchmarkEntropyObservePlugin(b *testing.B) {
	L := sampledZipf(1<<17, 0.2)
	e := core.NewEntropyEstimator(core.EntropyConfig{P: 0.2}, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(L[i%len(L)])
	}
}

func BenchmarkF1HHObserve(b *testing.B) {
	L := sampledZipf(1<<17, 0.2)
	e := core.NewF1HeavyHitters(core.F1HHConfig{P: 0.2, Alpha: 0.01}, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(L[i%len(L)])
	}
}

func BenchmarkF2HHObserve(b *testing.B) {
	L := sampledZipf(1<<17, 0.2)
	e := core.NewF2HeavyHitters(core.F2HHConfig{P: 0.2, Alpha: 0.1}, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(L[i%len(L)])
	}
}

// BenchmarkBernoulliSamplePipeline measures the end-to-end sampling path
// (generator → Bernoulli filter → estimator), the per-original-item cost
// a monitor would pay.
func BenchmarkBernoulliSamplePipeline(b *testing.B) {
	wl := workload.Zipf(1<<17, 65536, 1.1, 9)
	s := stream.Collect(wl.Stream)
	bern := sample.NewBernoulli(0.1)
	r := rng.New(2)
	e := core.NewFkEstimator(core.FkConfig{K: 2, P: 0.1, Budget: 4096}, rng.New(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s[i%len(s)]
		if r.Float64() < 0.1 {
			e.Observe(it)
		}
		_ = bern
	}
}

// --- sharded ingestion pipeline (internal/pipeline) ---

// benchmarkPipelineShards measures end-to-end pipeline throughput on the
// Zipf workload: original stream in, in-shard Bernoulli sampling, one
// level-set Fk replica per shard, merge at the end. ns/op is the cost of
// one full pass; speedup across the shard counts is near-linear up to the
// machine's core count (on a single-core machine the shard counts tie,
// since every worker shares the one CPU).
func benchmarkPipelineShards(b *testing.B, shards int) {
	wl := workload.Zipf(1<<17, 65536, 1.1, 7)
	s := stream.Collect(wl.Stream)
	b.SetBytes(int64(8 * len(s)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := pipeline.New(pipeline.Config{
			Shards:    shards,
			BatchSize: 1024,
			SampleP:   0.2,
			Seed:      uint64(i) + 1,
		}, func(shard int) *core.FkEstimator {
			return core.NewFkEstimator(core.FkConfig{K: 2, P: 0.2, Budget: 4096}, rng.New(42))
		})
		pl.FeedSlice(s)
		merged, err := pipeline.MergeAll(pl)
		if err != nil {
			b.Fatal(err)
		}
		if merged.Estimate() <= 0 {
			b.Fatal("degenerate estimate")
		}
	}
}

func BenchmarkPipelineShards1(b *testing.B) { benchmarkPipelineShards(b, 1) }
func BenchmarkPipelineShards2(b *testing.B) { benchmarkPipelineShards(b, 2) }
func BenchmarkPipelineShards4(b *testing.B) { benchmarkPipelineShards(b, 4) }
func BenchmarkPipelineShards8(b *testing.B) { benchmarkPipelineShards(b, 8) }

// BenchmarkPipelineBatchVsObserve isolates the batched hot path: the same
// sampled stream pushed through one estimator per-item vs in batches.
// The delta is the per-item interface-dispatch and bookkeeping overhead
// UpdateBatch exists to amortize — visible even on one core.
func BenchmarkPipelineBatchVsObserve(b *testing.B) {
	L := sampledZipf(1<<17, 0.2)
	b.Run("observe", func(b *testing.B) {
		e := core.NewFkEstimator(core.FkConfig{K: 2, P: 0.2, Budget: 4096}, rng.New(1))
		b.SetBytes(int64(8 * len(L)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, it := range L {
				e.Observe(it)
			}
		}
	})
	b.Run("batch1024", func(b *testing.B) {
		e := core.NewFkEstimator(core.FkConfig{K: 2, P: 0.2, Budget: 4096}, rng.New(1))
		b.SetBytes(int64(8 * len(L)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for off := 0; off < len(L); off += 1024 {
				end := off + 1024
				if end > len(L) {
					end = len(L)
				}
				e.UpdateBatch(L[off:end])
			}
		}
	})
}

// --- ingest hot path (per-kind ns/item across batch sizes) ---

// BenchmarkHotPath prices one estimator update at the three batch shapes
// that matter: single items (the Observe-equivalent worst case), the
// chunk size a forwarding monitor might use, and the pipeline's default
// batch. It runs over every constructible registry kind so a new
// estimator joins the throughput trajectory automatically, and reports
// ns/item so numbers are comparable across batch sizes.
func BenchmarkHotPath(b *testing.B) {
	wl := workload.Zipf(1<<16, 65536, 1.1, 5)
	items := stream.Collect(wl.Stream)
	for _, stat := range estimator.Stats() {
		for _, size := range []int{1, 64, 1024} {
			b.Run(fmt.Sprintf("%s/batch%d", stat, size), func(b *testing.B) {
				e, err := estimator.New(estimator.Spec{
					Stat: stat, P: 0.2, K: 2, Epsilon: 0.2, Alpha: 0.05, Budget: 4096, Seed: 11,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(8 * size))
				b.ReportAllocs()
				b.ResetTimer()
				off := 0
				for i := 0; i < b.N; i++ {
					if off+size > len(items) {
						off = 0
					}
					e.UpdateBatch(items[off : off+size])
					off += size
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(size)), "ns/item")
			})
		}
	}
}

// --- wire format (internal/estimator registry) ---

// wireEstimator builds one estimator of the named kind through the
// registry and feeds it a sampled Zipf stream, so marshal/decode benches
// measure realistically-populated summaries.
func wireEstimator(b *testing.B, stat string) estimator.Estimator {
	b.Helper()
	e, err := estimator.New(estimator.Spec{
		Stat: stat, P: 0.2, K: 2, Epsilon: 0.2, Alpha: 0.05, Budget: 4096, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	e.UpdateBatch(sampledZipf(1<<15, 0.2))
	return e
}

// benchmarkMarshal measures serializing one cumulative summary — the
// per-flush cost an agent pays — and reports the wire size, so
// bytes-per-summary shows up in the perf trajectory alongside
// throughput.
func benchmarkMarshal(b *testing.B, stat string) {
	e := wireEstimator(b, stat)
	payload, err := e.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(payload)), "bytes/summary")
}

// benchmarkDecode measures the registry's single decode entry point —
// the per-summary cost a collector pays on arrival.
func benchmarkDecode(b *testing.B, stat string) {
	e := wireEstimator(b, stat)
	payload, err := e.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimator.Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(payload)), "bytes/summary")
}

// --- windowed estimation (internal/window) ---

// windowedEstimator builds a W-epoch ring over stat, its traffic spread
// across W epochs on a manual clock.
func windowedEstimator(b *testing.B, stat string, w int) estimator.Estimator {
	b.Helper()
	clock := window.NewManualClock()
	e, err := window.Wrap(window.Config{
		Window: w, EpochLen: time.Second, Clock: clock,
		New: func() (estimator.Estimator, error) {
			return estimator.New(estimator.Spec{
				Stat: stat, P: 0.2, K: 2, Epsilon: 0.2, Alpha: 0.05, Budget: 4096, Seed: 11,
			})
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	items := sampledZipf(1<<15, 0.2)
	per := len(items) / w
	for ep := 0; ep < w; ep++ {
		clock.Set(uint64(ep))
		e.UpdateBatch(items[ep*per : (ep+1)*per])
	}
	return e
}

// BenchmarkWindowIngestF0 prices the wrapper's ingest tax: every batch
// feeds the current generation AND the cumulative replica, so the floor
// is 2x the raw estimator's batch cost plus a clock check.
func BenchmarkWindowIngestF0(b *testing.B) {
	e := windowedEstimator(b, "f0", 4)
	batch := sampledZipf(4096, 0.2)
	b.SetBytes(8 * int64(len(batch)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.UpdateBatch(batch)
	}
}

// BenchmarkWindowEstimateF0 prices a window query: decode the pristine
// replica, merge W generations, report.
func BenchmarkWindowEstimateF0(b *testing.B) {
	e := windowedEstimator(b, "f0", 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if est := e.Estimates(); est["window_f0"] <= 0 {
			b.Fatal("degenerate window estimate")
		}
	}
}

// BenchmarkWindowMarshalF0 prices a windowed flush, wire size included
// (W+2 nested payloads vs benchmarkMarshal's one).
func BenchmarkWindowMarshalF0(b *testing.B) {
	e := windowedEstimator(b, "f0", 4)
	payload, err := e.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(payload)), "bytes/summary")
}

func BenchmarkMarshalFk(b *testing.B)       { benchmarkMarshal(b, "fk") }
func BenchmarkMarshalF0(b *testing.B)       { benchmarkMarshal(b, "f0") }
func BenchmarkMarshalEntropy(b *testing.B)  { benchmarkMarshal(b, "entropy") }
func BenchmarkMarshalHH1(b *testing.B)      { benchmarkMarshal(b, "hh1") }
func BenchmarkMarshalHH2(b *testing.B)      { benchmarkMarshal(b, "hh2") }
func BenchmarkMarshalMonitor(b *testing.B)  { benchmarkMarshal(b, "all") }
func BenchmarkMarshalQuantile(b *testing.B) { benchmarkMarshal(b, "quantile") }

func BenchmarkDecodeFk(b *testing.B)       { benchmarkDecode(b, "fk") }
func BenchmarkDecodeF0(b *testing.B)       { benchmarkDecode(b, "f0") }
func BenchmarkDecodeEntropy(b *testing.B)  { benchmarkDecode(b, "entropy") }
func BenchmarkDecodeHH1(b *testing.B)      { benchmarkDecode(b, "hh1") }
func BenchmarkDecodeHH2(b *testing.B)      { benchmarkDecode(b, "hh2") }
func BenchmarkDecodeMonitor(b *testing.B)  { benchmarkDecode(b, "all") }
func BenchmarkDecodeQuantile(b *testing.B) { benchmarkDecode(b, "quantile") }

// --- network monitoring daemon (internal/server) ---

// benchmarkServerIngest measures the daemon's end-to-end ingest path:
// HTTP request in, body decode, pipeline dispatch, in-shard Bernoulli
// sampling, estimator update. One op is one 4096-item batch over a real
// (loopback) connection; bytes/sec is raw item payload throughput.
func benchmarkServerIngest(b *testing.B, contentType string, encode func(stream.Slice) []byte) {
	benchmarkServerIngestObs(b, contentType, encode, 0)
}

func benchmarkServerIngestObs(b *testing.B, contentType string, encode func(stream.Slice) []byte, obsSampleEvery int) {
	agent := server.NewAgent(server.AgentConfig{ID: "bench", ObsSampleEvery: obsSampleEvery})
	defer agent.Close()
	if err := agent.CreateStream("traffic", server.StreamConfig{
		Stat: "fk", K: 2, P: 0.05, Seed: 9, Exact: true, Shards: 4, Batch: 1024, SampleSeed: 7,
	}); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(agent.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/streams/traffic/ingest"

	const batchItems = 4096
	wl := workload.Zipf(batchItems, 65536, 1.1, 3)
	body := encode(stream.Collect(wl.Stream))

	b.SetBytes(8 * batchItems)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("ingest returned %s", resp.Status)
		}
	}
}

// benchmarkServerIngestWeighted mirrors benchmarkServerIngest for the
// weighted binary wire: 4096 16-byte records per op into a varopt
// stream, Pareto weights, same loopback HTTP round trip.
func benchmarkServerIngestWeighted(b *testing.B) {
	agent := server.NewAgent(server.AgentConfig{ID: "bench"})
	defer agent.Close()
	if err := agent.CreateStream("traffic", server.StreamConfig{
		Stat: "varopt", Budget: 1024, P: 0.05, Seed: 9, Shards: 4, Batch: 1024, SampleSeed: 7,
	}); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(agent.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/streams/traffic/ingest"

	const batchItems = 4096
	wl := workload.Zipf(batchItems, 65536, 1.1, 3)
	items := stream.Collect(wl.Stream)
	r := rng.New(5)
	body := make([]byte, 16*len(items))
	for i, it := range items {
		binary.LittleEndian.PutUint64(body[i*16:], uint64(it))
		binary.LittleEndian.PutUint64(body[i*16+8:], math.Float64bits(rng.Pareto(r, 1, 1.3)))
	}

	b.SetBytes(16 * batchItems)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, server.ContentTypeBinaryWeighted, bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("ingest returned %s", resp.Status)
		}
	}
}

func BenchmarkServerIngest(b *testing.B) {
	b.Run("binary", func(b *testing.B) {
		benchmarkServerIngest(b, server.ContentTypeBinary, func(items stream.Slice) []byte {
			buf := make([]byte, 8*len(items))
			for i, it := range items {
				binary.LittleEndian.PutUint64(buf[i*8:], uint64(it))
			}
			return buf
		})
	})
	b.Run("text", func(b *testing.B) {
		benchmarkServerIngest(b, server.ContentTypeText, func(items stream.Slice) []byte {
			var sb bytes.Buffer
			for _, it := range items {
				fmt.Fprintln(&sb, uint64(it))
			}
			return sb.Bytes()
		})
	})
	// The weighted lane: same end-to-end path but 16-byte key+weight
	// records into a VarOpt reservoir. Not a like-for-like comparison
	// with "binary" (twice the wire bytes per item, different estimator);
	// it records the weighted path's own throughput trajectory.
	b.Run("binary-weighted", func(b *testing.B) {
		benchmarkServerIngestWeighted(b)
	})
	// The ablation for histogram sampling: identical to binary but with
	// ObsSampleEvery 1, i.e. every request pays the decode/feed clock
	// reads and histogram inserts the default configuration samples
	// 1-in-64. The binary/obs-unsampled delta is the instrumentation tax
	// the sampler removes.
	b.Run("binary-obs-unsampled", func(b *testing.B) {
		benchmarkServerIngestObs(b, server.ContentTypeBinary, func(items stream.Slice) []byte {
			buf := make([]byte, 8*len(items))
			for i, it := range items {
				binary.LittleEndian.PutUint64(buf[i*8:], uint64(it))
			}
			return buf
		}, 1)
	})
}

// --- ablation: adaptive sampling probability (paper's open question 2) ---

func BenchmarkAdaptiveVsFixedP(b *testing.B) {
	wl := workload.Zipf(1<<16, 8192, 1.1, 10)
	s := stream.Collect(wl.Stream)
	boundary := len(s) / 2
	adaptive := sample.NewAdaptiveBernoulli([]int{boundary}, []float64{0.2, 0.05})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(i))
		tagged := adaptive.Apply(s, r)
		_ = adaptive.EstimateF2(tagged)
	}
}
