// Distributed monitoring: several routers each observe an independently
// Bernoulli-sampled share of the traffic; a central collector merges
// their summaries instead of the raw samples. The related work the paper
// surveys (Cormode et al., Tirthapura–Woodruff, "optimal sampling from
// distributed streams") motivates exactly this deployment.
//
// Each router ships two tiny summaries: a KMV sketch (distinct flows) and
// a CountMin sketch (per-flow packet counts). Merging is exact for both,
// so the collector answers as if it had seen every exported packet — and
// the 1/p scaling then recovers statistics of the ORIGINAL traffic.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"math"

	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/sketch"
	"substream/internal/stream"
	"substream/internal/workload"
)

const (
	routers   = 4
	packets   = 600000 // total original traffic across all routers
	p         = 0.05   // per-router sampled-NetFlow rate
	sketchKMV = 1024
)

func main() {
	r := rng.New(5)
	wl, _ := workload.NetFlow(packets, 15000, 1.05, 1.3, 4, r.Uint64())
	traffic := stream.Collect(wl.Stream)
	truth := stream.NewFreq(traffic)

	// Mergeable summaries must share construction seeds; each router
	// builds its own pair from the agreed seed.
	const agreedSeed = 1234
	mkKMV := func() *sketch.KMV { return sketch.NewKMV(sketchKMV, rng.New(agreedSeed)) }
	mkCM := func() *sketch.CountMin { return sketch.NewCountMin(4096, 5, rng.New(agreedSeed)) }

	// Traffic is striped across routers (ECMP-style); each samples at p.
	type router struct {
		kmv *sketch.KMV
		cm  *sketch.CountMin
		saw int
	}
	rs := make([]router, routers)
	for i := range rs {
		rs[i] = router{kmv: mkKMV(), cm: mkCM()}
	}
	bern := sample.NewBernoulli(p)
	for i := 0; i < routers; i++ {
		share := traffic[i*len(traffic)/routers : (i+1)*len(traffic)/routers]
		_ = bern.Pipe(share, r.Split(), func(it stream.Item) error {
			rs[i].kmv.Observe(it)
			rs[i].cm.Observe(it)
			rs[i].saw++
			return nil
		})
	}

	// Collector: merge all summaries.
	kmv, cm := mkKMV(), mkCM()
	totalSeen := 0
	for i := range rs {
		if err := kmv.Merge(rs[i].kmv); err != nil {
			panic(err)
		}
		if err := cm.Merge(rs[i].cm); err != nil {
			panic(err)
		}
		totalSeen += rs[i].saw
	}

	fmt.Printf("%d routers exported %d of %d packets (p=%.2f each)\n\n",
		routers, totalSeen, packets, p)

	// Distinct flows in the original traffic: Algorithm 2 on the merged
	// sample (X/√p).
	sampledDistinct := kmv.Estimate()
	estF0 := sampledDistinct / math.Sqrt(p) // Algorithm 2: X/√p
	fmt.Printf("distinct flows: merged-sample estimate %.0f → original-traffic estimate %.0f (true %d)\n",
		sampledDistinct, estF0, truth.F0())

	// Top flows: CountMin estimates on the merged sketch, scaled by 1/p.
	fmt.Printf("\ntop flows from the merged CountMin (scaled by 1/p):\n")
	fmt.Printf("%-8s %-14s %-12s %-8s\n", "flow", "est packets", "true", "err")
	for _, hh := range truth.TopK(5) {
		est := float64(cm.Estimate(hh.Item)) / p
		fmt.Printf("%-8d %-14.0f %-12d %+.1f%%\n",
			hh.Item, est, hh.Freq, 100*(est-float64(hh.Freq))/float64(hh.Freq))
	}

	fmt.Printf("\nbytes shipped per router: %d (KMV) + %d (CountMin) vs %d sampled packets\n",
		mkKMV().SpaceBytes(), mkCM().SpaceBytes(), totalSeen/routers*8)
}
