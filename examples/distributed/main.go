// Distributed monitoring: several routers each observe an independently
// Bernoulli-sampled share of the traffic; a central collector merges
// their summaries instead of the raw samples. The related work the paper
// surveys (Cormode et al., Tirthapura–Woodruff, "optimal sampling from
// distributed streams") motivates exactly this deployment, and
// internal/pipeline is its single-machine rendering: one worker per
// router, in-shard Bernoulli sampling, mergeable per-shard summaries.
//
// Each router ships three tiny summaries: a KMV sketch (distinct flows),
// a CountMin sketch (per-flow packet counts), and an exact-collision Fk
// estimator (traffic skew via F₂). Merging is exact for all three, so the
// collector answers as if it had seen every exported packet — and the
// paper's estimators then recover statistics of the ORIGINAL traffic.
//
// This example keeps everything in one process to show the merge
// machinery itself; examples/agentcollector runs the same topology as
// real HTTP daemons shipping serialized summaries (internal/server).
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"math"

	"substream/internal/core"
	"substream/internal/pipeline"
	"substream/internal/rng"
	"substream/internal/sketch"
	"substream/internal/stream"
	"substream/internal/workload"
)

const (
	routers   = 4
	packets   = 600000 // total original traffic across all routers
	p         = 0.05   // per-router sampled-NetFlow rate
	sketchKMV = 1024
)

// router is one monitoring point's summary bundle. It rides the pipeline
// via UpdateBatch and merges into the collector via Merge — the two
// interfaces the ingestion layer is built around.
type router struct {
	kmv *sketch.KMV
	cm  *sketch.CountMin
	f2  *core.FkEstimator
	saw int
}

// newRouter builds a router's summaries. Every router constructs from the
// same agreed seed: identical hash functions are what make the summaries
// mergeable at the collector (verified with probe keys at merge time).
func newRouter(int) *router {
	const agreedSeed = 1234
	return &router{
		kmv: sketch.NewKMV(sketchKMV, rng.New(agreedSeed)),
		cm:  sketch.NewCountMin(4096, 5, rng.New(agreedSeed)),
		f2:  core.NewFkEstimator(core.FkConfig{K: 2, P: p, Exact: true}, rng.New(agreedSeed)),
	}
}

// UpdateBatch absorbs one batch of this router's sampled packets.
func (rt *router) UpdateBatch(items []stream.Item) {
	rt.kmv.UpdateBatch(items)
	rt.cm.UpdateBatch(items)
	rt.f2.UpdateBatch(items)
	rt.saw += len(items)
}

// Merge folds another router's summaries into this one.
func (rt *router) Merge(other *router) error {
	if err := rt.kmv.Merge(other.kmv); err != nil {
		return err
	}
	if err := rt.cm.Merge(other.cm); err != nil {
		return err
	}
	if err := rt.f2.Merge(other.f2); err != nil {
		return err
	}
	rt.saw += other.saw
	return nil
}

func main() {
	r := rng.New(5)
	wl, _ := workload.NetFlow(packets, 15000, 1.05, 1.3, 4, r.Uint64())
	traffic := stream.Collect(wl.Stream)
	truth := stream.NewFreq(traffic)

	// Traffic is dealt across routers batch-by-batch (ECMP-style); each
	// worker samples its share at p before touching its summaries.
	pl := pipeline.New(pipeline.Config{
		Shards:    routers,
		BatchSize: 2048,
		SampleP:   p,
		Seed:      r.Uint64(),
	}, newRouter)
	pl.FeedSlice(traffic)

	// Collector: stop the workers and fold all summaries into one,
	// keeping one un-merged router aside to measure a single shipment.
	routerStates := pl.Close()
	collector, lastRouter := routerStates[0], routerStates[len(routerStates)-1]
	for _, rt := range routerStates[1:] {
		if err := collector.Merge(rt); err != nil {
			panic(err)
		}
	}

	fmt.Printf("%d routers exported %d of %d packets (p=%.2f each)\n\n",
		routers, collector.saw, packets, p)

	// Distinct flows in the original traffic: Algorithm 2 on the merged
	// sample (X/√p).
	sampledDistinct := collector.kmv.Estimate()
	estF0 := sampledDistinct / math.Sqrt(p) // Algorithm 2: X/√p
	fmt.Printf("distinct flows: merged-sample estimate %.0f → original-traffic estimate %.0f (true %d)\n",
		sampledDistinct, estF0, truth.F0())

	// Traffic skew: Algorithm 1's F₂ of the original traffic from the
	// merged collision counts.
	estF2 := collector.f2.Estimate()
	trueF2 := truth.Fk(2)
	fmt.Printf("traffic F2 (skew): merged estimate %.3g (true %.3g, %+.1f%%)\n",
		estF2, trueF2, 100*(estF2-trueF2)/trueF2)

	// Top flows: CountMin estimates on the merged sketch, scaled by 1/p.
	fmt.Printf("\ntop flows from the merged CountMin (scaled by 1/p):\n")
	fmt.Printf("%-8s %-14s %-12s %-8s\n", "flow", "est packets", "true", "err")
	for _, hh := range truth.TopK(5) {
		est := float64(collector.cm.Estimate(hh.Item)) / p
		fmt.Printf("%-8d %-14.0f %-12d %+.1f%%\n",
			hh.Item, est, hh.Freq, 100*(est-float64(hh.Freq))/float64(hh.Freq))
	}

	// The shipping cost is the real wire size of ONE router's serialized
	// summaries (the format internal/server ships) — Merge leaves its
	// source untouched, so lastRouter still holds a single router's state.
	kmvWire, _ := lastRouter.kmv.MarshalBinary()
	cmWire, _ := lastRouter.cm.MarshalBinary()
	f2Wire, _ := lastRouter.f2.MarshalBinary()
	fmt.Printf("\nbytes shipped per router: %d (KMV) + %d (CountMin) + %d (F2) vs %d for the raw sampled packets\n",
		len(kmvWire), len(cmWire), len(f2Wire), lastRouter.saw*8)
}
