// Windowed monitoring: why "distinct flows since boot" is the wrong
// answer to an operator's question, and what the epoch ring
// (internal/window) answers instead.
//
// A router watches normal traffic until a port scan floods it with
// never-repeating flows for two epochs, then stops. The cumulative F0
// estimate — all this repository's estimators before internal/window —
// keeps reporting the scan's flows forever. The windowed estimate over
// the last W epochs raises the alarm while the scan runs and RECOVERS
// once it stops, because expired generations rotate out of the ring:
//
//	epoch:   e-2   e-1    e (current)
//	          │     │     │
//	ring:   [gen] [gen] [gen] ── rotate on epoch boundary
//	          └─────┴──┬──┴─ window estimate = merge of retained gens
//
// The demo drives a ManualClock one epoch at a time; the daemon
// (cmd/substreamd) runs the identical machinery on a wall clock — see
// StreamConfig.Window/Epoch and the README's windowed-estimation
// section.
//
// Run: go run ./examples/windowed
package main

import (
	"fmt"
	"time"

	"substream/internal/estimator"
	"substream/internal/stream"
	"substream/internal/window"
	"substream/internal/workload"

	// Register the standard estimator kinds.
	_ "substream/internal/core"
)

const (
	epochs   = 8
	perEpoch = 40000
	scanFrom = 3 // scan runs during epochs [scanFrom, scanTo)
	scanTo   = 5
	W        = 3 // window span in epochs
)

func main() {
	spec := estimator.Spec{Stat: "f0", P: 1, Seed: 42}
	clock := window.NewManualClock()
	ring, err := window.New(window.Config{
		Window:   W,
		EpochLen: time.Second, // opaque here: the ManualClock drives rotation
		Clock:    clock,
		New:      func() (estimator.Estimator, error) { return estimator.New(spec) },
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("port-scan detection with a %d-epoch window (scan during epochs %d-%d)\n\n",
		W, scanFrom, scanTo-1)
	fmt.Printf("%-7s %-10s %-14s %-16s %s\n", "epoch", "flows", "window F0", "cumulative F0", "verdict")

	scanID := stream.Item(1_000_000)
	for e := 0; e < epochs; e++ {
		clock.Set(uint64(e))

		var traffic stream.Slice
		if e >= scanFrom && e < scanTo {
			// The scan: every packet a brand-new flow.
			traffic = make(stream.Slice, perEpoch)
			for i := range traffic {
				scanID++
				traffic[i] = scanID
			}
		} else {
			// Background traffic: the usual skewed flow mix.
			wl := workload.Zipf(perEpoch, 4000, 1.1, uint64(100+e))
			traffic = stream.Collect(wl.Stream)
		}
		ring.UpdateBatch(traffic)

		est := ring.Estimates()
		verdict := "ok"
		if est["window_f0"] > 3*4000 {
			verdict = "ALERT: flow explosion in window"
		}
		fmt.Printf("%-7d %-10d %-14.0f %-16.0f %s\n",
			e, len(traffic), est["window_f0"], est["f0"], verdict)
	}

	est := ring.Estimates()
	fmt.Printf("\nafter the scan: window F0 %.0f (back to normal) vs cumulative F0 %.0f"+
		" (scarred forever by %d scan flows)\n",
		est["window_f0"], est["f0"], (scanTo-scanFrom)*perEpoch)

	// The ring ships like any other summary: one payload, revivable
	// through the registry, frozen at its snapshot epoch.
	payload, err := estimator.Adapt(ring).MarshalBinary()
	if err != nil {
		panic(err)
	}
	revived, err := estimator.Decode(payload)
	if err != nil {
		panic(err)
	}
	epoch, _ := window.EpochOf(revived)
	fmt.Printf("serialized ring: %d bytes, revives at epoch %d with window F0 %.0f\n",
		len(payload), epoch, revived.Estimates()["window_f0"])
}
