// Streaming quantiles: answer "what is the p99 flow size?" from one
// pass in a few kilobytes — and keep the answer mergeable.
//
// Eight shards each observe a slice of a heavy-tailed stream and build a
// CKMS targeted-quantile summary (internal/quantile). The shards merge
// into one summary whose tail quantiles are guaranteed within 2ε·n
// ranks of the exact sorted data — the property a central collector
// relies on when it folds per-agent summaries (the "quantile" stat in
// substreamd stream configs rides exactly this path, windowed variants
// surfacing window_p99-style keys).
//
// Run: go run ./examples/quantiles
package main

import (
	"fmt"
	"sort"

	"substream/internal/quantile"
	"substream/internal/rng"
)

const (
	n      = 2_000_000
	shards = 8
)

func main() {
	// A Pareto-distributed value stream: most values tiny, the tail
	// enormous — flow sizes, latencies. Exact quantiles would need the
	// full sorted data; the summary keeps a few hundred samples.
	r := rng.New(7)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Pareto(r, 1, 1.3)
	}

	// Each shard summarizes its slice independently...
	es := make([]*quantile.Estimator, shards)
	for s := range es {
		es[s] = quantile.NewTargeted(quantile.DefaultTargets())
	}
	for i, v := range vals {
		es[i%shards].Insert(v)
	}
	// ...and the collector folds them.
	merged := quantile.NewTargeted(quantile.DefaultTargets())
	for _, e := range es {
		if err := merged.Merge(e); err != nil {
			panic(err)
		}
	}

	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)

	fmt.Printf("stream: n=%d values across %d shards\n\n", n, shards)
	for _, tg := range quantile.DefaultTargets() {
		got := merged.Query(tg.Quantile)
		exact := sorted[int(tg.Quantile*float64(n))]
		fmt.Printf("%-5s estimate %10.3f   exact %10.3f   guarantee ±%.2g%% of ranks\n",
			quantile.QuantileKey(tg.Quantile), got, exact, 200*tg.Epsilon)
	}
	fmt.Printf("\nspace: %d samples, %dB total (raw sorted data: %dMB)\n",
		merged.SampleCount(), merged.SpaceBytes(), 8*n>>20)
}
