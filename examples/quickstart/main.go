// Quickstart: the minimal end-to-end use of the library.
//
// A monitor sees only a Bernoulli sample of a high-rate stream (the
// paper's sampled-NetFlow model) and must still report statistics of the
// ORIGINAL stream. This example generates a skewed stream, samples it at
// p = 10%, and estimates F₀, F₂ and entropy from the sample alone.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"substream/internal/core"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
	"substream/internal/workload"
)

func main() {
	const p = 0.10 // sampling probability, fixed by the router
	r := rng.New(42)

	// The original stream P: 500k items, Zipf-skewed over 8k values.
	wl := workload.Zipf(500000, 8192, 1.1, r.Uint64())
	exact := stream.ComputeExact(wl.Stream)

	// The estimators observe ONLY the sampled stream L.
	f2 := core.NewFkEstimator(core.FkConfig{K: 2, P: p, Epsilon: 0.2}, r.Split())
	f0 := core.NewF0Estimator(core.F0Config{P: p}, r.Split())
	ent := core.NewEntropyEstimator(core.EntropyConfig{P: p}, r.Split())

	sampler := sample.NewBernoulli(p)
	observed := 0
	_ = sampler.Pipe(wl.Stream, r.Split(), func(it stream.Item) error {
		observed++
		f2.Observe(it)
		f0.Observe(it)
		ent.Observe(it)
		return nil
	})

	fmt.Printf("original stream: n=%d, distinct=%d — monitor saw only %d items (%.1f%%)\n\n",
		exact.N, exact.F0, observed, 100*float64(observed)/float64(exact.N))

	show := func(name string, est, truth float64) {
		fmt.Printf("%-8s estimate %14.4g   exact %14.4g   error %+6.2f%%\n",
			name, est, truth, 100*(est-truth)/truth)
	}
	show("F2", f2.Estimate(), exact.F2)
	show("F0", f0.Estimate(), float64(exact.F0))
	show("entropy", ent.Estimate(), exact.Entropy)

	fmt.Printf("\nspace used: F2=%dB  F0=%dB  entropy=%dB  (stream was %d items)\n",
		f2.SpaceBytes(), f0.SpaceBytes(), ent.SpaceBytes(), exact.N)
}
