// Agent/collector monitoring over HTTP: the cross-process version of
// examples/distributed. Two agent daemons each observe half of the
// original traffic, Bernoulli-sample it inside their sharded pipelines,
// and ship serialized cumulative summaries to a collector daemon, which
// folds them and answers for the WHOLE original stream — the paper's
// sampled-NetFlow topology as three real HTTP services (in-process here
// via httptest, but the wire traffic is genuine).
//
// Run: go run ./examples/agentcollector
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"time"

	"substream/internal/rng"
	"substream/internal/server"
	"substream/internal/stream"
	"substream/internal/workload"
)

const (
	agents  = 2
	packets = 400000 // total original traffic across both monitors
	p       = 0.05   // per-agent sampled-NetFlow rate
)

// must panics on HTTP or status errors; an example has no better answer.
func must(resp *http.Response, err error) {
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		panic(fmt.Sprintf("%s: %s", resp.Status, buf.String()))
	}
}

// binBody encodes items in the daemon's binary ingest format.
func binBody(items stream.Slice) *bytes.Reader {
	buf := make([]byte, 8*len(items))
	for i, it := range items {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(it))
	}
	return bytes.NewReader(buf)
}

func main() {
	// The central site: one collector daemon.
	collector := server.NewCollector(server.CollectorConfig{})
	cts := httptest.NewServer(collector.Handler())
	defer cts.Close()

	// The traffic: a heavy-tailed NetFlow-style workload, split across
	// the two monitoring points.
	r := rng.New(5)
	wl, _ := workload.NetFlow(packets, 15000, 1.05, 1.3, 4, r.Uint64())
	traffic := stream.Collect(wl.Stream)
	truth := stream.NewFreq(traffic)
	half := len(traffic) / 2

	// Every agent registers the same streams with the same estimator
	// Seed — identical construction is what makes the shipped summaries
	// mergeable — while sampling with its own coins.
	streams := map[string]server.StreamConfig{
		"flows": {Stat: "f0", P: p, Seed: 1234},
		"skew":  {Stat: "fk", K: 2, P: p, Seed: 1234, Exact: true},
		"top":   {Stat: "hh1", P: p, Alpha: 0.02, Seed: 1234},
	}

	var lastAgentURL string
	for i := 0; i < agents; i++ {
		agent := server.NewAgent(server.AgentConfig{
			ID:       fmt.Sprintf("router-%d", i),
			Upstream: cts.URL,
		})
		ats := httptest.NewServer(agent.Handler())
		defer ats.Close()
		defer agent.Close()
		lastAgentURL = ats.URL

		for name, cfg := range streams {
			body, _ := json.Marshal(cfg)
			req, _ := http.NewRequest(http.MethodPut, ats.URL+"/v1/streams/"+name, bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			must(http.DefaultClient.Do(req))
		}

		// This agent's share of the original traffic, in one big batch.
		share := traffic[i*half : (i+1)*half]
		for name := range streams {
			must(http.Post(ats.URL+"/v1/streams/"+name+"/ingest",
				server.ContentTypeBinary, binBody(share)))
		}

		// Ship the cumulative summaries upstream (in production the
		// daemon's -flush ticker does this continuously).
		must(http.Post(ats.URL+"/flush", "", nil))
	}

	// The collector now answers for the union of both substreams.
	estimate := func(name string) (est struct {
		Agents    int    `json:"agents"`
		Fed       uint64 `json:"fed"`
		Kept      uint64 `json:"kept"`
		Estimates struct {
			Values    map[string]float64 `json:"values"`
			F1Hitters []struct {
				Item stream.Item `json:"Item"`
				Freq float64     `json:"Freq"`
			} `json:"f1_hitters"`
		} `json:"estimates"`
	}) {
		resp, err := http.Get(cts.URL + "/v1/streams/" + name + "/estimate")
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			panic(fmt.Sprintf("estimate %s: %s: %s", name, resp.Status, buf.String()))
		}
		if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
			panic(err)
		}
		return est
	}

	flows := estimate("flows")
	fmt.Printf("%d agents exported %d of %d packets (p=%.2f each)\n\n",
		flows.Agents, flows.Kept, packets, p)

	estF0 := flows.Estimates.Values["f0"]
	fmt.Printf("distinct flows:  collector estimate %8.0f   (true %d)\n", estF0, truth.F0())

	skew := estimate("skew")
	trueF2 := truth.Fk(2)
	estF2 := skew.Estimates.Values["fk"]
	fmt.Printf("traffic F2:      collector estimate %8.3g   (true %.3g, %+.1f%%)\n",
		estF2, trueF2, 100*(estF2-trueF2)/trueF2)

	top := estimate("top")
	fmt.Printf("\ntop flows from the merged summaries (frequencies scaled by 1/p):\n")
	fmt.Printf("%-8s %-14s %-10s\n", "flow", "est packets", "true")
	for i, hh := range top.Estimates.F1Hitters {
		if i == 5 {
			break
		}
		fmt.Printf("%-8d %-14.0f %-10d\n", hh.Item, hh.Freq, truth[hh.Item])
	}

	// The topology observes itself (see README "Observability"): the
	// agent's Prometheus exposition carries sampler acceptance and
	// shipping cost, and the collector's trace ring records each
	// summary's flush→fold propagation latency.
	fmt.Printf("\nagent /metricsz?format=prom (excerpt):\n")
	resp, err := http.Get(lastAgentURL + "/metricsz?format=prom")
	if err != nil {
		panic(err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, line := range bytes.Split(prom.Bytes(), []byte("\n")) {
		switch {
		case bytes.HasPrefix(line, []byte("agent_stream_")),
			bytes.HasPrefix(line, []byte("summary_bytes_shipped")),
			bytes.HasPrefix(line, []byte("agent_flush_seconds{")):
			fmt.Printf("  %s\n", line)
		}
	}

	var trace struct {
		Total int `json:"total"`
		Spans []struct {
			TraceID uint64 `json:"trace_id"`
			Stream  string `json:"stream"`
			Agent   string `json:"agent"`
			E2ENs   int64  `json:"e2e_ns"`
		} `json:"spans"`
	}
	resp, err = http.Get(cts.URL + "/debug/tracez")
	if err != nil {
		panic(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Printf("\ncollector /debug/tracez: %d fold spans (flush -> global estimate):\n", trace.Total)
	for _, sp := range trace.Spans {
		fmt.Printf("  trace %016x  %-6s %-9s e2e %s\n",
			sp.TraceID, sp.Stream, sp.Agent, time.Duration(sp.E2ENs))
	}

	fmt.Printf("\n--- collector kill/restart (fault tolerance) ---\n")
	killRestartDemo(os.Stdout)
}

// killRestartDemo shows the fault-tolerance layer end to end: the
// collector is killed mid-run and a fresh process is revived from its
// durability snapshot behind the same URL. The global estimate survives
// the crash — answered before any agent reships — and the next flush
// catches the revived collector up with the traffic that arrived while
// it was down. There is no replay queue anywhere: summaries are
// cumulative, so one flush repairs any loss.
func killRestartDemo(w io.Writer) {
	dir, err := os.MkdirTemp("", "substream-snap-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// The collector sits behind a swappable front so its URL — the one
	// the agent keeps shipping to — survives the restart, exactly like a
	// respawned process re-binding its address.
	var handler atomic.Pointer[http.Handler]
	swap := func(c *server.Collector) {
		h := c.Handler()
		handler.Store(&h)
	}
	collector := server.NewCollector(server.CollectorConfig{SnapshotDir: dir})
	swap(collector)
	cts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(rw, r)
	}))
	defer cts.Close()

	agent := server.NewAgent(server.AgentConfig{ID: "router-0", Upstream: cts.URL})
	defer agent.Close()
	ats := httptest.NewServer(agent.Handler())
	defer ats.Close()
	// SampleSeed pins the sampling coins too: the demo's output is
	// deterministic so the Example test can assert it verbatim.
	cfg, _ := json.Marshal(server.StreamConfig{Stat: "f0", P: p, Seed: 1234, SampleSeed: 99, Shards: 1})
	req, _ := http.NewRequest(http.MethodPut, ats.URL+"/v1/streams/flows", bytes.NewReader(cfg))
	req.Header.Set("Content-Type", "application/json")
	must(http.DefaultClient.Do(req))

	r := rng.New(5)
	wl, _ := workload.NetFlow(packets/2, 15000, 1.05, 1.3, 4, r.Uint64())
	traffic := stream.Collect(wl.Stream)
	half := len(traffic) / 2

	distinct := func(c *server.Collector) float64 {
		est, err := c.Estimate("flows")
		if err != nil {
			panic(err)
		}
		return est.Estimates.Values["f0"]
	}

	must(http.Post(ats.URL+"/v1/streams/flows/ingest", server.ContentTypeBinary, binBody(traffic[:half])))
	must(http.Post(ats.URL+"/flush", "", nil))
	fmt.Fprintf(w, "first half shipped:  distinct flows %.0f\n", distinct(collector))

	// Kill the collector after its checkpoint lands (the daemon's Run
	// loop writes these periodically and once more on shutdown), then
	// revive a fresh one from the same snapshot dir.
	if err := collector.SaveSnapshot(); err != nil {
		panic(err)
	}
	revived := server.NewCollector(server.CollectorConfig{SnapshotDir: dir})
	swap(revived)
	fmt.Fprintf(w, "collector killed and revived from snapshot\n")
	fmt.Fprintf(w, "before any reship:   distinct flows %.0f\n", distinct(revived))

	// Traffic the old collector never saw reaches the revived one on the
	// agent's next regular flush.
	must(http.Post(ats.URL+"/v1/streams/flows/ingest", server.ContentTypeBinary, binBody(traffic[half:])))
	must(http.Post(ats.URL+"/flush", "", nil))
	fmt.Fprintf(w, "after next flush:    distinct flows %.0f (true %d)\n",
		distinct(revived), stream.NewFreq(traffic).F0())
}
