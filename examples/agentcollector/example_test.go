package main

import "os"

// Example_killRestart pins the fault-tolerance demo: fixed estimator
// and sampling seeds make the run deterministic, so the invariant the
// demo exists for — the global estimate surviving the collector's death
// via snapshot restore, and the next flush catching the revived
// collector up — is verbatim output, not a flaky assertion.
func Example_killRestart() {
	killRestartDemo(os.Stdout)
	// Output:
	// first half shipped:  distinct flows 6380
	// collector killed and revived from snapshot
	// before any reship:   distinct flows 6380
	// after next flush:    distinct flows 10098 (true 5953)
}
