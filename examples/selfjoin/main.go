// Self-join size estimation from a sampled update stream — the database
// workload behind F₂ (§1.3's comparison with Rusu–Dobra, "Sketching
// sampled data streams", ICDE 2009).
//
// A table receives a stream of inserts keyed by join attribute; the
// optimizer wants |R ⋈ R| = F₂ of the key-frequency vector, but the
// monitor only sees a p-sample of the inserts. Three estimators compete:
//
//   - Algorithm 1 (collision method, this paper): Õ(1/p) space
//   - Rusu–Dobra scaling: sketch F₂(L), invert the expectation — error
//     amplified by 1/p²
//   - naive normalization F₂(L)/p²: ignores the binomial cross-terms
//
// Run: go run ./examples/selfjoin
package main

import (
	"fmt"

	"substream/internal/core"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stats"
	"substream/internal/stream"
	"substream/internal/workload"
)

func main() {
	const (
		inserts = 400000
		keys    = 100000
		trials  = 7
	)
	r := rng.New(11)
	// Near-uniform key frequencies (≈13 rows per key): the regime where
	// F₂ is only a constant factor above F₁ and the sampling cross-terms
	// dominate — exactly where the three estimators separate.
	wl := workload.Uniform(inserts, keys, r.Uint64())
	exact := stream.NewFreq(wl.Stream).Fk(2)
	fmt.Printf("insert stream: %d rows, %d join keys, true |R⋈R| = %.4g\n\n",
		inserts, keys, exact)

	fmt.Printf("%-6s %-18s %-18s %-18s\n", "p", "collision (Alg 1)", "Rusu-Dobra scale", "naive F2(L)/p²")
	for _, p := range []float64{0.5, 0.1, 0.02} {
		var coll, scale, naive stats.Summary
		for tr := 0; tr < trials; tr++ {
			ce := core.NewFkEstimator(core.FkConfig{K: 2, P: p, Epsilon: 0.2, Budget: 2048}, r.Split())
			se := core.NewScaledF2Estimator(core.ScaledF2Config{P: p, Width: 2048, Depth: 5}, r.Split())
			ne := core.NewNaiveFkEstimator(2, p)
			_ = sample.NewBernoulli(p).Pipe(wl.Stream, r.Split(), func(it stream.Item) error {
				ce.Observe(it)
				se.Observe(it)
				ne.Observe(it)
				return nil
			})
			coll.Add(stats.RelErr(ce.Estimate(), exact))
			scale.Add(stats.RelErr(se.Estimate(), exact))
			naive.Add(stats.RelErr(ne.Estimate(), exact))
		}
		fmt.Printf("%-6g %-18s %-18s %-18s\n", p,
			pct(coll.Median()), pct(scale.Median()), pct(naive.Median()))
	}

	fmt.Println("\nmedian relative error over", trials, "independent samples per cell.")
	fmt.Println("shape to expect: all methods fine at p=0.5; naive collapses as the")
	fmt.Println("linear binomial term grows; scaling degrades faster than collision.")
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
