// Entropy-based anomaly detection over a sampled stream (§5).
//
// Destination-port entropy is a classic network anomaly signal: normal
// traffic has high, stable entropy; a port scan adds thousands of
// near-singleton ports (entropy spike), a DDoS concentrates traffic on
// one port (entropy crash). The monitor sees only a p-sample of packets,
// and by Theorem 5 the sampled entropy still tracks the original within a
// constant factor while H(f) is large — enough to alarm on CHANGES.
//
// Run: go run ./examples/entropyanomaly
package main

import (
	"fmt"
	"strings"

	"substream/internal/core"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
	"substream/internal/workload"
)

// window builds one traffic window: baseline Zipf port traffic, with an
// optional anomaly mixed in.
func window(kind string, n int, seed uint64) stream.Slice {
	r := rng.New(seed)
	base := stream.Collect(workload.Zipf(n, 1024, 1.0, r.Uint64()).Stream)
	switch kind {
	case "normal":
		return base
	case "portscan":
		// 30% of packets hit fresh high ports, one packet each.
		out := make(stream.Slice, 0, n)
		next := stream.Item(10000)
		for i, it := range base {
			if i%10 < 3 {
				out = append(out, next)
				next++
			} else {
				out = append(out, it)
			}
		}
		return out
	case "ddos":
		// 70% of packets slam port 80.
		out := make(stream.Slice, 0, n)
		for i, it := range base {
			if i%10 < 7 {
				out = append(out, 80)
			} else {
				out = append(out, it)
			}
		}
		return out
	}
	panic("unknown window kind " + kind)
}

func main() {
	const (
		n = 200000
		p = 0.05
	)
	r := rng.New(99)

	fmt.Printf("per-window destination-port entropy, monitor sees p=%.0f%% of packets\n\n", p*100)
	fmt.Printf("%-10s %-12s %-12s %-10s %s\n", "window", "H(f) true", "Ĥ sampled", "ratio", "alarm")

	var baseline float64
	for i, kind := range []string{"normal", "normal", "portscan", "normal", "ddos", "normal"} {
		w := window(kind, n, uint64(i+1))
		exact := stream.NewFreq(w).Entropy()

		est := core.NewEntropyEstimator(core.EntropyConfig{P: p}, r.Split())
		_ = sample.NewBernoulli(p).Pipe(w, r.Split(), func(it stream.Item) error {
			est.Observe(it)
			return nil
		})
		h := est.Estimate()

		alarm := ""
		if baseline > 0 {
			change := h / baseline
			switch {
			case change > 1.25:
				alarm = "ENTROPY SPIKE (scan?)"
			case change < 0.75:
				alarm = "ENTROPY CRASH (ddos?)"
			}
		}
		if kind == "normal" {
			// Update the rolling baseline on normal windows only.
			if baseline == 0 {
				baseline = h
			} else {
				baseline = 0.8*baseline + 0.2*h
			}
		}
		label := kind
		if alarm != "" {
			label = strings.ToUpper(kind)
		}
		fmt.Printf("%-10s %-12.3f %-12.3f %-10.3f %s\n", label, exact, h, h/exact, alarm)
	}

	fmt.Println("\nthe sampled estimate tracks true entropy closely (ratio ≈ 1) because")
	fmt.Println("H(f) is far above the Theorem 5 floor; anomalies remain visible at p=5%.")
}
