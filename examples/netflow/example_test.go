package main

import "os"

// Example_bytesFromPrefix pins the weighted demo end to end: a fixed
// seed makes the reservoir deterministic, so the Horvitz–Thompson
// subset sum for 10.0.0.0/8 — and its closeness to the true byte
// share — is reproducible output, not a flaky bound.
func Example_bytesFromPrefix() {
	bytesFromPrefix(os.Stdout)
	// Output:
	// bytes from 10.0.0.0/8 (VarOpt k=1024 over 30000 flows):
	// estimated share 15.0%, true share 14.8% of 3.44e+08 total bytes
}
