// NetFlow monitoring: the paper's motivating scenario (§1).
//
// A router exports a Bernoulli-sampled packet stream ("randomly sampled
// NetFlow"); the collector must answer, about the ORIGINAL traffic:
//
//   - how many distinct flows were active? (F₀ — Algorithm 2)
//   - which flows exceeded 2% of traffic?  (F₁ heavy hitters — Theorem 6)
//   - how large was the self-join of the flow-size distribution,
//     a standard skew indicator? (F₂ — Algorithm 1)
//   - how many BYTES came from 10.0.0.0/8? (weighted subset sum over a
//     VarOpt-k reservoir — see bytesFromPrefix)
//
// Run: go run ./examples/netflow
package main

import (
	"fmt"
	"io"
	"os"

	"substream/internal/core"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
	"substream/internal/workload"
)

func main() {
	const (
		packets = 800000
		flows   = 20000
		p       = 0.05 // 1-in-20 sampled NetFlow
		alpha   = 0.02 // report flows above 2% of packets
	)
	r := rng.New(7)

	// Synthetic trace: Zipf-popular flows with Pareto sizes (DESIGN.md
	// §4.1 substitution for proprietary traces).
	wl, _ := workload.NetFlow(packets, flows, 1.05, 1.3, 4, r.Uint64())
	truth := stream.NewFreq(wl.Stream)

	f0 := core.NewF0Estimator(core.F0Config{P: p}, r.Split())
	hh := core.NewF1HeavyHitters(core.F1HHConfig{P: p, Alpha: alpha, Epsilon: 0.2}, r.Split())
	f2 := core.NewFkEstimator(core.FkConfig{K: 2, P: p, Epsilon: 0.2}, r.Split())

	seen := 0
	_ = sample.NewBernoulli(p).Pipe(wl.Stream, r.Split(), func(it stream.Item) error {
		seen++
		f0.Observe(it)
		hh.Observe(it)
		f2.Observe(it)
		return nil
	})

	fmt.Printf("router exported %d of %d packets (p=%.2f)\n\n", seen, packets, p)

	fmt.Printf("active flows: estimated %.0f, true %d (mult bound %.1fx — Lemma 8)\n",
		f0.Estimate(), truth.F0(), f0.ErrorBound())

	fmt.Printf("self-join size F2: estimated %.4g, true %.4g\n\n",
		f2.Estimate(), truth.Fk(2))

	fmt.Printf("flows above %.0f%% of traffic (threshold %d packets):\n",
		alpha*100, int(alpha*packets))
	fmt.Printf("%-10s %-14s %-12s %-8s\n", "flow", "est packets", "true", "err")
	for _, h := range hh.Report() {
		truthC := truth[h.Item]
		fmt.Printf("%-10d %-14.0f %-12d %+.1f%%\n",
			h.Item, h.Freq, truthC, 100*(h.Freq-float64(truthC))/float64(truthC))
	}

	// Verify against ground truth.
	missed := 0
	for _, t := range truth.FkHeavyHitters(1, alpha) {
		found := false
		for _, h := range hh.Report() {
			if h.Item == t.Item {
				found = true
				break
			}
		}
		if !found {
			missed++
		}
	}
	fmt.Printf("\nground-truth heavy flows missed: %d (Theorem 6 predicts 0 when n ≥ %.3g)\n",
		missed, hh.MinStreamLength(packets, 0.05))

	fmt.Println()
	bytesFromPrefix(os.Stdout)
}

// bytesFromPrefix is the weighted twin of the scenario above: each flow
// record carries its byte count as a weight, and the question is a
// subset sum — how many bytes came from inside 10.0.0.0/8? A VarOpt-k
// reservoir (k flows of state, here 1024 out of 30000) answers with the
// Horvitz–Thompson estimator: exact weights for the retained heavy
// flows plus τ per retained light one. The flow key holds the source
// address in its low 32 bits, the daemon's subset-sum convention.
func bytesFromPrefix(w io.Writer) {
	const (
		flowCount = 30000
		k         = 1024
	)
	r := rng.New(11)
	v := sample.NewVarOpt(k, r.Split())

	var totalBytes, insideBytes float64
	for i := 0; i < flowCount; i++ {
		// Roughly a quarter of flows originate inside 10.0.0.0/8; the
		// rest come from a 192.168.0.0/16 pool. Flow sizes are
		// Pareto-tailed bytes, the same shape the workload generator
		// uses for packet counts.
		var addr uint64
		if r.Uint64n(4) == 0 {
			addr = 10<<24 | r.Uint64n(1<<24)
		} else {
			addr = 192<<24 | 168<<16 | r.Uint64n(1<<16)
		}
		size := rng.Pareto(r, 1500, 1.2)
		v.ObserveWeighted(stream.Item(addr), size)
		totalBytes += size
		if addr>>24 == 10 {
			insideBytes += size
		}
	}

	est := v.SubsetSum(func(it stream.Item) bool {
		return (uint64(it)&0xffff_ffff)>>24 == 10
	})
	fmt.Fprintf(w, "bytes from 10.0.0.0/8 (VarOpt k=%d over %d flows):\n", k, flowCount)
	fmt.Fprintf(w, "estimated share %.1f%%, true share %.1f%% of %.3g total bytes\n",
		100*est/v.TotalWeight(), 100*insideBytes/totalBytes, totalBytes)
}
