// NetFlow monitoring: the paper's motivating scenario (§1).
//
// A router exports a Bernoulli-sampled packet stream ("randomly sampled
// NetFlow"); the collector must answer, about the ORIGINAL traffic:
//
//   - how many distinct flows were active? (F₀ — Algorithm 2)
//   - which flows exceeded 2% of traffic?  (F₁ heavy hitters — Theorem 6)
//   - how large was the self-join of the flow-size distribution,
//     a standard skew indicator? (F₂ — Algorithm 1)
//
// Run: go run ./examples/netflow
package main

import (
	"fmt"

	"substream/internal/core"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
	"substream/internal/workload"
)

func main() {
	const (
		packets = 800000
		flows   = 20000
		p       = 0.05 // 1-in-20 sampled NetFlow
		alpha   = 0.02 // report flows above 2% of packets
	)
	r := rng.New(7)

	// Synthetic trace: Zipf-popular flows with Pareto sizes (DESIGN.md
	// §4.1 substitution for proprietary traces).
	wl, _ := workload.NetFlow(packets, flows, 1.05, 1.3, 4, r.Uint64())
	truth := stream.NewFreq(wl.Stream)

	f0 := core.NewF0Estimator(core.F0Config{P: p}, r.Split())
	hh := core.NewF1HeavyHitters(core.F1HHConfig{P: p, Alpha: alpha, Epsilon: 0.2}, r.Split())
	f2 := core.NewFkEstimator(core.FkConfig{K: 2, P: p, Epsilon: 0.2}, r.Split())

	seen := 0
	_ = sample.NewBernoulli(p).Pipe(wl.Stream, r.Split(), func(it stream.Item) error {
		seen++
		f0.Observe(it)
		hh.Observe(it)
		f2.Observe(it)
		return nil
	})

	fmt.Printf("router exported %d of %d packets (p=%.2f)\n\n", seen, packets, p)

	fmt.Printf("active flows: estimated %.0f, true %d (mult bound %.1fx — Lemma 8)\n",
		f0.Estimate(), truth.F0(), f0.ErrorBound())

	fmt.Printf("self-join size F2: estimated %.4g, true %.4g\n\n",
		f2.Estimate(), truth.Fk(2))

	fmt.Printf("flows above %.0f%% of traffic (threshold %d packets):\n",
		alpha*100, int(alpha*packets))
	fmt.Printf("%-10s %-14s %-12s %-8s\n", "flow", "est packets", "true", "err")
	for _, h := range hh.Report() {
		truthC := truth[h.Item]
		fmt.Printf("%-10d %-14.0f %-12d %+.1f%%\n",
			h.Item, h.Freq, truthC, 100*(h.Freq-float64(truthC))/float64(truthC))
	}

	// Verify against ground truth.
	missed := 0
	for _, t := range truth.FkHeavyHitters(1, alpha) {
		found := false
		for _, h := range hh.Report() {
			if h.Item == t.Item {
				found = true
				break
			}
		}
		if !found {
			missed++
		}
	}
	fmt.Printf("\nground-truth heavy flows missed: %d (Theorem 6 predicts 0 when n ≥ %.3g)\n",
		missed, hh.MinStreamLength(packets, 0.05))
}
